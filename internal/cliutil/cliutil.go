// Package cliutil holds the small helpers shared by the cmd/ binaries:
// logger setup, comma-separated list parsing, experiment budget
// selection, table-or-CSV output, spec dumping, timeout contexts, and
// trace-file tracers.
package cliutil

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/series"
)

// Setup configures the standard logger the binaries share: no
// timestamps, the binary's name as prefix.
func Setup(name string) {
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
}

// Output writes the table to stdout, as CSV when csv is set.
func Output(tbl *series.Table, csv bool) {
	if csv {
		fmt.Fprint(os.Stdout, tbl.CSV())
		return
	}
	fmt.Print(tbl.String())
}

// DumpJSON pretty-prints v to stdout; the binaries use it for -dumpspec.
func DumpJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// Context returns a context honouring the -timeout convention: zero
// means no deadline. The cancel func must always be called.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), timeout)
}

// ParseInts parses a comma-separated integer list such as "64,256,1024".
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad integer %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty list %q", s)
	}
	return out, nil
}

// ParseFloats parses a comma-separated float list such as "0.2,0.5,0.8".
func ParseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad float %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty list %q", s)
	}
	return out, nil
}

// ParseStrings parses a comma-separated string list such as
// "hosta:8713, hostb:8713", trimming whitespace and dropping empty
// entries; it is the decoder behind list-valued flags like cmd/sweep's
// -addr.
func ParseStrings(s string) ([]string, error) {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty list %q", s)
	}
	return out, nil
}

// ParseBackends parses the shared -backend flag: a comma-separated
// subset of "model", "sim", "bounds" (e.g. "model,bounds"). The
// analytic model anchors every other backend, so it is always
// included; names are deduplicated and returned in the canonical
// model, sim, bounds order regardless of input order.
func ParseBackends(s string) ([]string, error) {
	names, err := ParseStrings(s)
	if err != nil {
		return nil, err
	}
	want := map[string]bool{"model": true}
	for _, n := range names {
		switch n {
		case "model", "sim", "bounds":
			want[n] = true
		default:
			return nil, fmt.Errorf("cliutil: unknown backend %q (want model, sim or bounds)", n)
		}
	}
	out := make([]string, 0, 3)
	for _, n := range []string{"model", "sim", "bounds"} {
		if want[n] {
			out = append(out, n)
		}
	}
	return out, nil
}

// OpenTracer opens an NDJSON span tracer writing to path, buffered, for
// the -trace-out flag convention. The returned close function flushes
// the tracer and closes the file, returning the first error seen on any
// write; it must be called before the process exits or the tail of the
// trace is lost.
func OpenTracer(path string) (*obs.Tracer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("cliutil: opening trace file: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	t := obs.NewTracer(bw)
	closeFn := func() error {
		err := t.Close() // flushes bw, reports sticky write errors
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return t, closeFn, nil
}

// Budget returns the Full budget when full is set, Quick otherwise, with
// the given seed applied.
func Budget(full bool, seed uint64) exp.Budget {
	b := exp.Quick
	if full {
		b = exp.Full
	}
	b.Seed = seed
	return b
}
