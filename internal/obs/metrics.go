package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a process-wide monotonic counter. Counters are cheap
// atomics; hot loops should still accumulate locally and Add once per
// run, which is what the sim engine does.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

var (
	regMu    sync.Mutex
	registry = make(map[string]*Counter)
)

// NewCounter registers (or returns the existing) counter under name.
// Names should follow Prometheus conventions and end in _total; the
// serve layer renders every registered counter on /metrics verbatim.
func NewCounter(name string) *Counter {
	regMu.Lock()
	defer regMu.Unlock()
	if c, ok := registry[name]; ok {
		return c
	}
	c := &Counter{}
	registry[name] = c
	return c
}

// Counters returns a point-in-time snapshot of every registered
// counter, sorted iteration being left to the caller.
func Counters() map[string]int64 {
	regMu.Lock()
	defer regMu.Unlock()
	out := make(map[string]int64, len(registry))
	for name, c := range registry {
		out[name] = c.v.Load()
	}
	return out
}

// CounterNames returns the registered counter names in sorted order.
func CounterNames() []string {
	regMu.Lock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.Unlock()
	sort.Strings(names)
	return names
}
