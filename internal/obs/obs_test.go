package obs

import (
	"bytes"
	"context"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Disabled tracing must cost nothing: no allocations, no goroutines,
// same context back. Pinned like sim's TestSteadyStateAllocs so a
// regression that puts garbage on the untraced hot path fails CI.
func TestDisabledPathAllocFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := StartSpanKeyed(ctx, "eval.cell", "family=bft size=64")
		sp.SetAttr(Bool("cached", true))
		sp.End()
		if c2 != ctx {
			t.Fatal("disabled StartSpan must return ctx unchanged")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f/op, want 0", allocs)
	}
	h := http.Header{}
	allocs = testing.AllocsPerRun(1000, func() {
		Inject(ctx, h)
	})
	if allocs != 0 {
		t.Fatalf("disabled Inject allocates %.1f/op, want 0", allocs)
	}
}

// The tracer owns no goroutines: heavy concurrent span traffic must
// leave the goroutine count where it started.
func TestTracerGoroutineLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_, sp := StartSpan(ctx, "work")
				sp.End(Int("i", i), Int("j", j))
			}
		}(i)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 8*200 {
		t.Fatalf("got %d events, want %d", len(events), 8*200)
	}
}

// Keyed span IDs are a pure function of (trace, parent, name, key), so
// two identical runs produce identical IDs — the diffability contract.
func TestDeterministicKeyedIDs(t *testing.T) {
	run := func() []Event {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		ctx := WithTracer(context.Background(), tr)
		rctx, root := StartSpanKeyed(ctx, "sweep.run", "figure3")
		for _, key := range []string{"cell-a", "cell-b"} {
			_, sp := StartSpanKeyed(rctx, "eval.cell", key)
			sp.End(Bool("cached", false))
		}
		root.End(Int("cells", 2))
		events, err := ReadEvents(&buf)
		if err != nil {
			t.Fatalf("ReadEvents: %v", err)
		}
		return events
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 3 {
		t.Fatalf("got %d and %d events, want 3", len(a), len(b))
	}
	for i := range a {
		if a[i].Span != b[i].Span || a[i].Trace != b[i].Trace || a[i].Parent != b[i].Parent {
			t.Fatalf("event %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if a[0].Parent != a[2].Span || a[0].Trace != a[2].Span {
		t.Fatalf("cell span not parented on root: %+v root %+v", a[0], a[2])
	}
}

// Header propagation: a server extracting what a client injected must
// parent its spans inside the client's trace.
func TestHTTPPropagationStitches(t *testing.T) {
	var coord, shard bytes.Buffer
	ctr := NewTracer(&coord)
	cctx := WithTracer(context.Background(), ctr)
	cctx, root := StartSpanKeyed(cctx, "dispatch.sweep", "figure3")
	rangeCtx, rangeSpan := StartSpanKeyed(cctx, "dispatch.range", "shardA:0-4")

	h := http.Header{}
	Inject(rangeCtx, h)
	if h.Get(TraceHeader) == "" || h.Get(SpanHeader) == "" {
		t.Fatalf("Inject left headers empty: %v", h)
	}

	str := NewTracer(&shard)
	sctx := Extract(context.Background(), str, h)
	_, req := StartSpan(sctx, "serve:/v1/sweep/part")
	_, cell := StartSpanKeyed(sctx, "eval.cell", "cell-a")
	cell.End(Bool("cached", false))
	req.End(Int("status", 200))
	rangeSpan.End(String("shard", "shardA"))
	root.End()

	cev, err := ReadEvents(&coord)
	if err != nil {
		t.Fatalf("coord events: %v", err)
	}
	sev, err := ReadEvents(&shard)
	if err != nil {
		t.Fatalf("shard events: %v", err)
	}
	all := append(cev, sev...)
	f := BuildForest(all)
	if err := CheckForest(f); err != nil {
		t.Fatalf("stitched forest not well-formed: %v", err)
	}
	if len(f.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(f.Traces))
	}
	if len(f.Roots) != 1 || f.Roots[0].Event.Name != "dispatch.sweep" {
		t.Fatalf("unexpected roots: %+v", f.Roots)
	}
}

// End-before-parent and orphan detection.
func TestCheckForestOrphans(t *testing.T) {
	events := []Event{
		{Trace: "t1", Span: "a", Name: "root"},
		{Trace: "t1", Span: "b", Parent: "missing", Name: "child"},
	}
	f := BuildForest(events)
	if err := CheckForest(f); err == nil {
		t.Fatal("CheckForest accepted an orphan")
	}
}

func TestAnalyzeReport(t *testing.T) {
	events := []Event{
		{Trace: "t", Span: "r", Name: "sweep.run", DurUS: 1000},
		{Trace: "t", Span: "g1", Parent: "r", Name: "dispatch.range", DurUS: 700,
			Attrs: map[string]any{"shard": "s1", "cells": float64(3)}},
		{Trace: "t", Span: "g2", Parent: "r", Name: "dispatch.range", DurUS: 200,
			Attrs: map[string]any{"shard": "s2", "cells": float64(1)}},
		{Trace: "t", Span: "c1", Parent: "g1", Name: "eval.cell", DurUS: 600,
			Attrs: map[string]any{"cached": false}},
		{Trace: "t", Span: "c2", Parent: "g2", Name: "eval.cell", DurUS: 10,
			Attrs: map[string]any{"cached": true}},
	}
	r := Analyze(events)
	if r.Orphans != 0 || r.Traces != 1 || r.Spans != 5 {
		t.Fatalf("bad counts: %+v", r)
	}
	if r.CacheHits != 1 || r.CacheMisses != 1 {
		t.Fatalf("cache counts: hits=%d misses=%d", r.CacheHits, r.CacheMisses)
	}
	if len(r.Shards) != 2 || r.Shards[0].Addr != "s1" || r.Shards[0].Cells != 3 {
		t.Fatalf("shard stats: %+v", r.Shards)
	}
	want := []string{"sweep.run", "dispatch.range", "eval.cell"}
	if len(r.CritPath) != len(want) {
		t.Fatalf("critical path: %+v", r.CritPath)
	}
	for i, st := range r.CritPath {
		if st.Name != want[i] {
			t.Fatalf("critical path step %d = %s, want %s", i, st.Name, want[i])
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	out := buf.String()
	for _, needle := range []string{"cache:", "per-layer time:", "per-shard skew:", "critical path:"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("formatted report missing %q:\n%s", needle, out)
		}
	}
}

func TestCountersRegistry(t *testing.T) {
	c := NewCounter("obs_test_events_total")
	if again := NewCounter("obs_test_events_total"); again != c {
		t.Fatal("NewCounter not idempotent")
	}
	c.Add(3)
	c.Add(4)
	if got := Counters()["obs_test_events_total"]; got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
}

func TestParseMetrics(t *testing.T) {
	text := "# HELP x y\n# TYPE x counter\nx 3\nhttp_req{path=\"/v1/eval\"} 2\n"
	m, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseMetrics: %v", err)
	}
	if m["x"] != 3 || m[`http_req{path="/v1/eval"}`] != 2 {
		t.Fatalf("parsed: %v", m)
	}
	if _, err := ParseMetrics(strings.NewReader("bad line without value\n")); err == nil {
		t.Fatal("ParseMetrics accepted a malformed line")
	}
	if _, err := ParseMetrics(strings.NewReader("x 1\nx 2\n")); err == nil {
		t.Fatal("ParseMetrics accepted duplicate samples")
	}
}
