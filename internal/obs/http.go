package obs

import (
	"context"
	"net/http"
)

// Trace context crosses process boundaries in two headers. A client
// whose context carries a span injects them; a server extracts them
// and parents its request span on the remote span, stitching the
// coordinator's tree and every shard's tree into one trace.
const (
	// TraceHeader carries the trace ID.
	TraceHeader = "X-Obs-Trace"
	// SpanHeader carries the client-side parent span ID.
	SpanHeader = "X-Obs-Span"
)

// Inject copies the trace context carried by ctx into h. A context
// without a trace leaves h untouched, so it is safe to call
// unconditionally on every outbound request.
func Inject(ctx context.Context, h http.Header) {
	tc, ok := ctx.Value(ctxKey{}).(traceCtx)
	if !ok || tc.trace == "" {
		return
	}
	h.Set(TraceHeader, tc.trace)
	if tc.span != "" {
		h.Set(SpanHeader, tc.span)
	}
}

// Extract returns a context carrying the trace context found in h,
// sinking to t. Without trace headers it degrades to WithTracer(ctx,
// t); with neither headers nor a tracer it returns ctx unchanged, so
// the untraced request path stays allocation-free.
func Extract(ctx context.Context, t *Tracer, h http.Header) context.Context {
	trace := h.Get(TraceHeader)
	if trace == "" {
		return WithTracer(ctx, t)
	}
	return withRemote(ctx, t, trace, h.Get(SpanHeader))
}
