package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ReadEvents parses a stream of NDJSON span events — typically the
// concatenation of the coordinator's and every shard's trace files.
// Blank lines are skipped; a torn or malformed line is an error.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if ev.Trace == "" || ev.Span == "" || ev.Name == "" {
			return nil, fmt.Errorf("obs: trace line %d: missing trace/span/name", line)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}

// Node is one span in a reassembled trace tree. Deterministic keyed
// IDs mean a span ID can legitimately recur (e.g. the same scenario
// evaluated as a probe twice); Count and DurUS then aggregate every
// occurrence while Event keeps the first.
type Node struct {
	Event    Event
	Count    int
	DurUS    int64
	Children []*Node
}

// Forest is a set of trace trees reassembled from events. Orphans are
// spans whose parent never appeared — in a healthy multi-file trace
// (coordinator + all shards concatenated) there are none.
type Forest struct {
	Roots   []*Node
	Orphans []*Node
	Nodes   map[string]*Node
	Traces  []string
}

// BuildForest reassembles span events into trees by parent ID.
func BuildForest(events []Event) *Forest {
	f := &Forest{Nodes: make(map[string]*Node, len(events))}
	traces := make(map[string]bool)
	order := make([]*Node, 0, len(events))
	for _, ev := range events {
		if n, ok := f.Nodes[ev.Span]; ok {
			n.Count++
			n.DurUS += ev.DurUS
			continue
		}
		n := &Node{Event: ev, Count: 1, DurUS: ev.DurUS}
		f.Nodes[ev.Span] = n
		order = append(order, n)
		if !traces[ev.Trace] {
			traces[ev.Trace] = true
			f.Traces = append(f.Traces, ev.Trace)
		}
	}
	for _, n := range order {
		switch parent := n.Event.Parent; {
		case parent == "":
			f.Roots = append(f.Roots, n)
		case f.Nodes[parent] != nil:
			p := f.Nodes[parent]
			p.Children = append(p.Children, n)
		default:
			f.Orphans = append(f.Orphans, n)
		}
	}
	for _, n := range order {
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i].Event, n.Children[j].Event
			if a.StartUS != b.StartUS {
				return a.StartUS < b.StartUS
			}
			return a.Span < b.Span
		})
	}
	sort.Strings(f.Traces)
	return f
}

// LayerStat aggregates spans sharing a name ("layer"): span count and
// total self-reported duration.
type LayerStat struct {
	Name  string
	Count int
	DurUS int64
}

// ShardStat aggregates dispatch.range spans per shard address.
type ShardStat struct {
	Addr  string
	Spans int
	Cells int64
	DurUS int64
}

// PathStep is one hop of the critical path: the span and its depth.
type PathStep struct {
	Name  string
	DurUS int64
	Attrs map[string]any
}

// Report summarizes a trace forest for humans and smoke scripts.
type Report struct {
	Traces      int
	Spans       int
	Events      int
	Orphans     int
	Layers      []LayerStat
	CritPath    []PathStep
	CacheHits   int
	CacheMisses int
	Decisions   map[string]int
	// Calibration observation tally from calib.observe spans: how many
	// sim-carrying cells the run offered the calibration map, and how
	// many became model-vs-sim pairs (the rest were duplicates,
	// saturated, or unparseable).
	CalibObserved int
	CalibPaired   int
	Shards        []ShardStat
	RootDurUS     int64
	RootName      string
}

// Analyze reassembles events and computes the summary: per-layer time,
// the critical path of the longest trace, cache hit ratio from
// eval-cell spans, and per-shard skew from dispatch.range spans.
func Analyze(events []Event) *Report {
	f := BuildForest(events)
	r := &Report{
		Traces:    len(f.Traces),
		Spans:     len(f.Nodes),
		Events:    len(events),
		Orphans:   len(f.Orphans),
		Decisions: make(map[string]int),
	}
	layers := make(map[string]*LayerStat)
	shards := make(map[string]*ShardStat)
	for _, ev := range events {
		ls := layers[ev.Name]
		if ls == nil {
			ls = &LayerStat{Name: ev.Name}
			layers[ev.Name] = ls
		}
		ls.Count++
		ls.DurUS += ev.DurUS
		if c, ok := ev.Attrs["cached"].(bool); ok {
			if c {
				r.CacheHits++
			} else {
				r.CacheMisses++
			}
		}
		if v, ok := ev.Attrs["verdict"].(string); ok {
			r.Decisions[v]++
		}
		if ev.Name == "calib.observe" {
			r.CalibObserved++
			if p, ok := ev.Attrs["paired"].(bool); ok && p {
				r.CalibPaired++
			}
		}
		if addr, ok := ev.Attrs["shard"].(string); ok {
			ss := shards[addr]
			if ss == nil {
				ss = &ShardStat{Addr: addr}
				shards[addr] = ss
			}
			ss.Spans++
			ss.DurUS += ev.DurUS
			if cells, ok := attrInt64(ev.Attrs["cells"]); ok {
				ss.Cells += cells
			}
		}
	}
	for _, ls := range layers {
		r.Layers = append(r.Layers, *ls)
	}
	sort.Slice(r.Layers, func(i, j int) bool { return r.Layers[i].DurUS > r.Layers[j].DurUS })
	for _, ss := range shards {
		r.Shards = append(r.Shards, *ss)
	}
	sort.Slice(r.Shards, func(i, j int) bool { return r.Shards[i].Addr < r.Shards[j].Addr })

	// Critical path: walk the longest root, descending into the
	// longest child at every level.
	var root *Node
	for _, n := range f.Roots {
		if root == nil || n.Event.DurUS > root.Event.DurUS {
			root = n
		}
	}
	if root != nil {
		r.RootName = root.Event.Name
		r.RootDurUS = root.Event.DurUS
		for n := root; n != nil; {
			r.CritPath = append(r.CritPath, PathStep{Name: n.Event.Name, DurUS: n.Event.DurUS, Attrs: n.Event.Attrs})
			var next *Node
			for _, c := range n.Children {
				if next == nil || c.Event.DurUS > next.Event.DurUS {
					next = c
				}
			}
			n = next
		}
	}
	return r
}

// attrInt64 widens the numeric types json.Unmarshal can produce.
func attrInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case float64:
		return int64(x), true
	case int64:
		return x, true
	case int:
		return int64(x), true
	}
	return 0, false
}

// Format renders the report as aligned plain text.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "traces: %d  spans: %d  events: %d  orphans: %d\n",
		r.Traces, r.Spans, r.Events, r.Orphans)
	if r.RootName != "" {
		fmt.Fprintf(w, "root: %s  %s\n", r.RootName, usToString(r.RootDurUS))
	}
	if total := r.CacheHits + r.CacheMisses; total > 0 {
		fmt.Fprintf(w, "cache: %d hits / %d misses (%.1f%% hit ratio)\n",
			r.CacheHits, r.CacheMisses, 100*float64(r.CacheHits)/float64(total))
	}
	if len(r.Decisions) > 0 {
		verdicts := make([]string, 0, len(r.Decisions))
		for v := range r.Decisions {
			verdicts = append(verdicts, v)
		}
		sort.Strings(verdicts)
		fmt.Fprintf(w, "decisions:")
		for _, v := range verdicts {
			fmt.Fprintf(w, " %s=%d", v, r.Decisions[v])
		}
		fmt.Fprintln(w)
	}
	if r.CalibObserved > 0 {
		fmt.Fprintf(w, "calibration: %d cell(s) observed, %d paired\n", r.CalibObserved, r.CalibPaired)
	}
	if len(r.Layers) > 0 {
		fmt.Fprintln(w, "per-layer time:")
		for _, ls := range r.Layers {
			fmt.Fprintf(w, "  %-24s %6d span(s)  %s\n", ls.Name, ls.Count, usToString(ls.DurUS))
		}
	}
	if len(r.Shards) > 0 {
		fmt.Fprintln(w, "per-shard skew:")
		var maxDur, minDur int64 = 0, -1
		for _, ss := range r.Shards {
			fmt.Fprintf(w, "  %-28s %4d range(s)  %6d cell(s)  %s\n",
				ss.Addr, ss.Spans, ss.Cells, usToString(ss.DurUS))
			if ss.DurUS > maxDur {
				maxDur = ss.DurUS
			}
			if minDur < 0 || ss.DurUS < minDur {
				minDur = ss.DurUS
			}
		}
		if len(r.Shards) > 1 && minDur > 0 {
			fmt.Fprintf(w, "  skew (max/min shard time): %.2fx\n", float64(maxDur)/float64(minDur))
		}
	}
	if len(r.CritPath) > 0 {
		fmt.Fprintln(w, "critical path:")
		for i, st := range r.CritPath {
			fmt.Fprintf(w, "  %s%s %s\n", strings.Repeat("  ", i), st.Name, usToString(st.DurUS))
		}
	}
}

func usToString(us int64) string {
	switch {
	case us >= 1_000_000:
		return strconv.FormatFloat(float64(us)/1e6, 'f', 2, 64) + "s"
	case us >= 1_000:
		return strconv.FormatFloat(float64(us)/1e3, 'f', 2, 64) + "ms"
	}
	return strconv.FormatInt(us, 10) + "us"
}

// CheckForest validates well-formedness for smoke gates: at least one
// span, no orphans (every parent present — shard trees stitched to the
// coordinator's), and exactly one root per trace.
func CheckForest(f *Forest) error {
	if len(f.Nodes) == 0 {
		return fmt.Errorf("obs: trace is empty")
	}
	if len(f.Orphans) > 0 {
		o := f.Orphans[0]
		return fmt.Errorf("obs: %d orphan span(s): e.g. %s (%s) references missing parent %s",
			len(f.Orphans), o.Event.Span, o.Event.Name, o.Event.Parent)
	}
	rootsPerTrace := make(map[string]int)
	for _, n := range f.Roots {
		rootsPerTrace[n.Event.Trace]++
	}
	for _, trace := range f.Traces {
		if rootsPerTrace[trace] != 1 {
			return fmt.Errorf("obs: trace %s has %d roots, want 1", trace, rootsPerTrace[trace])
		}
	}
	return nil
}

// ParseMetrics validates a Prometheus text-format exposition and
// returns sample values keyed by the full sample line's name+labels.
// Used by the obs smoke to prove /metrics stays machine-parseable.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	out := make(map[string]float64)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sp := strings.LastIndexByte(text, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("obs: metrics line %d: no value: %q", line, text)
		}
		name, val := text[:sp], text[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: bad value %q: %v", line, val, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("obs: metrics line %d: duplicate sample %q", line, name)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading metrics: %w", err)
	}
	return out, nil
}
