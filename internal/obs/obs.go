// Package obs is the stdlib-only observability core: span-style trace
// events emitted as NDJSON, trace context propagated through contexts
// and HTTP headers, and a process-wide counter registry that the serve
// layer folds into its /metrics renderer.
//
// The design goal is that traces are *diffable*: span IDs are derived
// deterministically (FNV-64a) from the trace ID, parent ID, span name
// and — when the caller has one — a stable domain key such as a
// scenario key. Two runs of the same sweep over the same fleet produce
// byte-comparable trees modulo timings.
//
// Everything is nil-safe: a nil *Tracer, a context without a trace, or
// a nil *Span all degrade to no-ops with zero allocations, so
// instrumentation can stay unconditionally in hot paths.
package obs

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span as it appears on the wire: a single
// NDJSON line written when the span ends. Attrs with NaN values are
// replaced by nil and infinities by signed strings so the line always
// marshals.
type Event struct {
	Trace   string         `json:"trace"`
	Span    string         `json:"span"`
	Parent  string         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Tracer serializes completed spans to a writer, one JSON object per
// line. It owns no goroutines: End marshals and writes inline under a
// mutex, so closing a tracer can never leak. Write errors are sticky
// and reported by Close.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	seq atomic.Uint64
	err error
}

// NewTracer returns a tracer writing NDJSON span events to w. The
// writer is used under the tracer's own mutex and needs no locking of
// its own.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Close flushes the underlying writer when it supports flushing
// (e.g. *bufio.Writer) and returns the first error seen on any write.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.w.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

func (t *Tracer) emit(ev *Event) {
	line, err := json.Marshal(ev)
	if err != nil {
		// Attr sanitizing makes this unreachable; keep the tracer
		// alive regardless.
		return
	}
	line = append(line, '\n')
	t.mu.Lock()
	if t.err == nil {
		if _, err := t.w.Write(line); err != nil {
			t.err = err
		}
	}
	t.mu.Unlock()
}

// Attr is one typed key/value pair attached to a span.
type Attr struct {
	Key   string
	Value any
}

// String returns a string-valued attr.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an int-valued attr.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Int64 returns an int64-valued attr.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Bool returns a bool-valued attr.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Float returns a float-valued attr. NaN becomes nil and infinities
// become "+Inf"/"-Inf" strings so the event always marshals.
func Float(k string, v float64) Attr {
	switch {
	case math.IsNaN(v):
		return Attr{Key: k, Value: nil}
	case math.IsInf(v, 1):
		return Attr{Key: k, Value: "+Inf"}
	case math.IsInf(v, -1):
		return Attr{Key: k, Value: "-Inf"}
	}
	return Attr{Key: k, Value: v}
}

// Span is one in-flight span. All methods are safe on a nil receiver,
// which is what StartSpan returns when tracing is disabled.
type Span struct {
	t      *Tracer
	trace  string
	id     string
	parent string
	name   string
	start  time.Time
	wallUS int64

	mu    sync.Mutex
	attrs map[string]any
	done  bool
}

// traceCtx is the value carried in a context: the sink (nil in a
// process that only forwards trace IDs) plus the current trace and
// span IDs.
type traceCtx struct {
	tracer *Tracer
	trace  string
	span   string
}

type ctxKey struct{}

// WithTracer returns a context that starts new root spans on t. A nil
// tracer returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, traceCtx{tracer: t})
}

// withRemote returns a context carrying an externally supplied trace
// and parent span ID (extracted from HTTP headers) sinking to t, which
// may be nil when the process only forwards.
func withRemote(ctx context.Context, t *Tracer, trace, span string) context.Context {
	return context.WithValue(ctx, ctxKey{}, traceCtx{tracer: t, trace: trace, span: span})
}

// CopyTrace returns dst carrying src's trace context, if any. Batching
// layers use it when their request context must outlive any single
// caller but should still join the first traced caller's trace.
func CopyTrace(dst, src context.Context) context.Context {
	if tc, ok := src.Value(ctxKey{}).(traceCtx); ok {
		return context.WithValue(dst, ctxKey{}, tc)
	}
	return dst
}

// TraceIDs reports the trace and span IDs carried by ctx, if any.
func TraceIDs(ctx context.Context) (trace, span string, ok bool) {
	tc, ok := ctx.Value(ctxKey{}).(traceCtx)
	if !ok || tc.trace == "" {
		return "", "", false
	}
	return tc.trace, tc.span, true
}

// Enabled reports whether spans started from ctx will be recorded.
func Enabled(ctx context.Context) bool {
	tc, ok := ctx.Value(ctxKey{}).(traceCtx)
	return ok && tc.tracer != nil
}

// StartSpan starts a span named name as a child of the span carried by
// ctx (or as a trace root when there is none). Its ID is derived from
// a per-tracer sequence number, so it is deterministic only for
// single-threaded callers; concurrent layers with a stable domain key
// should use StartSpanKeyed. Returns ctx unchanged and a nil span when
// tracing is disabled.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return startSpan(ctx, name, "", true)
}

// StartSpanKeyed starts a span whose ID is derived from (trace,
// parent, name, key) instead of a sequence number, making it stable
// across runs and thread schedules as long as key is stable — e.g. a
// scenario key for per-cell spans.
func StartSpanKeyed(ctx context.Context, name, key string) (context.Context, *Span) {
	return startSpan(ctx, name, key, false)
}

func startSpan(ctx context.Context, name, key string, seq bool) (context.Context, *Span) {
	tc, ok := ctx.Value(ctxKey{}).(traceCtx)
	if !ok || tc.tracer == nil {
		return ctx, nil
	}
	now := time.Now()
	s := &Span{
		t:      tc.tracer,
		parent: tc.span,
		name:   name,
		start:  now,
		wallUS: now.UnixMicro(),
	}
	if seq {
		key = "#" + formatID(tc.tracer.seq.Add(1))
	}
	if tc.trace == "" {
		// Root span: the trace ID is the root's own ID, derived
		// without a trace component.
		s.id = deriveID("", "", name, key)
		s.trace = s.id
	} else {
		s.trace = tc.trace
		s.id = deriveID(tc.trace, tc.span, name, key)
	}
	return context.WithValue(ctx, ctxKey{}, traceCtx{tracer: tc.tracer, trace: s.trace, span: s.id}), s
}

// SetAttr attaches an attr to the span before it ends. Safe for
// concurrent use and a no-op on a nil span.
func (s *Span) SetAttr(a Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		if s.attrs == nil {
			s.attrs = make(map[string]any)
		}
		s.attrs[a.Key] = a.Value
	}
	s.mu.Unlock()
}

// End completes the span, merging attrs over any set earlier, and
// emits its NDJSON event. Subsequent calls are no-ops.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	if len(attrs) > 0 && s.attrs == nil {
		s.attrs = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		s.attrs[a.Key] = a.Value
	}
	ev := &Event{
		Trace:   s.trace,
		Span:    s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.wallUS,
		DurUS:   dur.Microseconds(),
		Attrs:   s.attrs,
	}
	s.mu.Unlock()
	s.t.emit(ev)
}

// ID returns the span's ID ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// fnv-64a, inlined so the disabled path never allocates a hash.Hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvAdd(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	// Separator byte so ("ab","c") and ("a","bc") hash apart.
	h ^= 0xff
	h *= fnvPrime64
	return h
}

func deriveID(trace, parent, name, key string) string {
	h := uint64(fnvOffset64)
	h = fnvAdd(h, trace)
	h = fnvAdd(h, parent)
	h = fnvAdd(h, name)
	h = fnvAdd(h, key)
	return formatID(h)
}

const hexdigits = "0123456789abcdef"

func formatID(h uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}
