// Command figure3 regenerates the paper's Figure 3: average latency vs
// load rate (flits/cycle per processor) for the butterfly fat-tree, model
// against flit-level simulation, for several message lengths.
//
// Usage:
//
//	figure3 [-n 1024] [-flits 16,32,64] [-points 10] [-maxfrac 0.95]
//	        [-full] [-nosim] [-csv] [-seed 1] [-dumpspec]
//
// The default run matches the paper (N = 1024; 16/32/64-flit messages)
// with a CI-sized simulation budget; -full uses report-quality windows.
//
// The binary is a thin wrapper over the declarative sweep engine: the
// flags compile to a sweep spec (printable with -dumpspec, runnable with
// cmd/sweep) and only the plot/summary rendering lives here. The default
// flags produce the same grid as `sweep -spec builtin:figure3`, cell for
// cell.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	cliutil.Setup("figure3")
	var (
		n       = flag.Int("n", 1024, "number of processors (power of four)")
		flits   = flag.String("flits", "16,32,64", "message lengths in flits")
		points  = flag.Int("points", 10, "loads per curve")
		maxFrac = flag.Float64("maxfrac", 0.95, "top of sweep as a fraction of model saturation")
		full    = flag.Bool("full", false, "use the report-quality simulation budget")
		noSim   = flag.Bool("nosim", false, "model curves only (fast)")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of the ASCII plot")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		dump    = flag.Bool("dumpspec", false, "print the sweep spec for these flags as JSON and exit")
	)
	flag.Parse()

	sizes, err := cliutil.ParseInts(*flits)
	if err != nil {
		log.Fatal(err)
	}
	cfg := exp.Figure3Config{
		NumProc:  *n,
		MsgFlits: sizes,
		Points:   *points,
		MaxFrac:  *maxFrac,
		WithSim:  !*noSim,
		Budget:   cliutil.Budget(*full, *seed),
	}
	if *dump {
		if err := cliutil.DumpJSON(exp.Figure3Spec(cfg)); err != nil {
			log.Fatal(err)
		}
		return
	}
	res, err := exp.Figure3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *csvOut {
		fmt.Fprint(os.Stdout, res.CSV())
		return
	}
	fmt.Println(res.Plot())
	fmt.Println(res.Summary())
}
