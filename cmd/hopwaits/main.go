// Command hopwaits runs experiment V1: the deepest validation of the
// paper's Eq. 9/10. Every channel grant in the simulator is instrumented;
// measured per-channel-class arbitration waits are compared with the
// model's flow-weighted blocking-corrected waits Σ P(i|j)·W̄ⱼ.
//
// Usage:
//
//	hopwaits [-n 256] [-flits 16] [-load 0.04] [-full] [-seed 1]
//	         [-csv] [-json] [-timeout 2m]
//
// -timeout bounds the wall clock (the instrumented simulation aborts
// inside its cycle loop); -json emits the rows as JSON instead of the
// table.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	cliutil.Setup("hopwaits")
	var (
		n       = flag.Int("n", 256, "number of processors (power of four)")
		flits   = flag.Int("flits", 16, "message length in flits")
		load    = flag.Float64("load", 0.04, "offered load (flits/cycle per processor)")
		full    = flag.Bool("full", false, "use the report-quality simulation budget")
		csv     = flag.Bool("csv", false, "emit CSV")
		jsonOut = flag.Bool("json", false, "emit JSON")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
	)
	flag.Parse()

	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()

	rows, err := exp.HopWaitsContext(ctx, *n, *flits, *load, cliutil.Budget(*full, *seed))
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *jsonOut:
		if err := cliutil.DumpJSON(rows); err != nil {
			log.Fatal(err)
		}
	case *csv:
		cliutil.Output(exp.HopWaitTable(rows), true)
	default:
		fmt.Printf("V1: per-channel-class waits, N=%d, s=%d flits, load=%.4f flits/cyc/PE\n",
			*n, *flits, *load)
		cliutil.Output(exp.HopWaitTable(rows), false)
		fmt.Println("\nmodel wait = flow-weighted Σ P(i|j)·W̄j over incoming classes (Eq. 9/10);")
		fmt.Println("the injection class is excluded (its wait is the source queue, W̄(0,1)).")
	}
}
