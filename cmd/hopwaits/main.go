// Command hopwaits runs experiment V1: the deepest validation of the
// paper's Eq. 9/10. Every channel grant in the simulator is instrumented;
// measured per-channel-class arbitration waits are compared with the
// model's flow-weighted blocking-corrected waits Σ P(i|j)·W̄ⱼ.
//
// Usage:
//
//	hopwaits [-n 256] [-flits 16] [-load 0.04] [-full] [-csv] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	cliutil.Setup("hopwaits")
	var (
		n     = flag.Int("n", 256, "number of processors (power of four)")
		flits = flag.Int("flits", 16, "message length in flits")
		load  = flag.Float64("load", 0.04, "offered load (flits/cycle per processor)")
		full  = flag.Bool("full", false, "use the report-quality simulation budget")
		csv   = flag.Bool("csv", false, "emit CSV")
		seed  = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	rows, err := exp.HopWaits(*n, *flits, *load, cliutil.Budget(*full, *seed))
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		cliutil.Output(exp.HopWaitTable(rows), true)
		return
	}
	fmt.Printf("V1: per-channel-class waits, N=%d, s=%d flits, load=%.4f flits/cyc/PE\n",
		*n, *flits, *load)
	cliutil.Output(exp.HopWaitTable(rows), false)
	fmt.Println("\nmodel wait = flow-weighted Σ P(i|j)·W̄j over incoming classes (Eq. 9/10);")
	fmt.Println("the injection class is excluded (its wait is the source queue, W̄(0,1)).")
}
