// Command plan runs capacity-planner searches: a JSON plan spec (or a
// built-in named question) describing a design space, an objective and
// constraints is searched with the model-guided optimizer — coarse
// analytic prune, per-candidate bisection on the load axis, Pareto
// frontier over (cost, latency, sustainable load), simulator
// certification of the frontier — and rendered as a table, JSON, or an
// NDJSON update stream. See docs/plan.md.
//
// Usage:
//
//	plan -spec builtin:bft-capacity              # a built-in question
//	plan -spec my-question.json -json            # custom spec, JSON out
//	plan -spec builtin:bft-capacity -stream      # NDJSON updates
//	plan -spec builtin:bft-capacity -timeout 60s # bounded wall clock
//	plan -list                                   # show built-in plans
//	plan -dumpspec builtin:cheapest-sla          # print a spec as JSON
//	plan -spec builtin:bft-capacity -shards :8713,:8714
//	                                             # search over a sweepd fleet
//	plan -spec builtin:bft-capacity -addr :8713  # submit to a server's /v1/plan
//	plan -spec builtin:bft-capacity -cache-dir d # persistent probe cache
//	plan -spec builtin:bft-capacity -trace-out t.ndjson   # NDJSON span trace
//	plan -spec builtin:calibrated-capacity -calib map.json
//	                                             # trust-gated certification
//
// Progress streams to stderr; results go to stdout. With -shards the
// search runs in this process but every evaluation executes on the
// named sweepd fleet: the coarse grid is dispatched as contiguous
// ranges (work stealing, shard failover) and the bisection probes
// rotate per-cell with retry, all warming the fleet-tagged cache lines.
// With -addr the whole search runs inside the named server (or
// front-end) via POST /v1/plan and this process just consumes the
// update stream — the thin-client form.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/calib"
	"repro/internal/cliutil"
	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/store"
	"repro/internal/sweep"
)

func main() {
	cliutil.Setup("plan")
	var (
		specRef  = flag.String("spec", "", "spec file path or builtin:<name>")
		list     = flag.Bool("list", false, "list built-in plan specs and exit")
		dump     = flag.String("dumpspec", "", "print the named spec (file path or builtin:<name>) as JSON and exit")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON instead of a table")
		stream   = flag.Bool("stream", false, "emit NDJSON: one update line per search event")
		timeout  = flag.Duration("timeout", 0, "abort the search after this duration (0 = no deadline)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		backend  = flag.String("backend", "", "override spec backends: comma-separated subset of model,sim,bounds (empty = spec's own; omitting sim skips certification)")
		addr     = flag.String("addr", "", "submit the plan to this sweepd server's /v1/plan (thin client)")
		shards   = flag.String("shards", "", "execute the search over these sweepd shard(s), comma-separated")
		cacheDir = flag.String("cache-dir", "", "persist the probe cache to this directory (empty = in-memory)")
		calibRef = flag.String("calib", "", "calibration map file (cmd/calib) for trust-gated certification; see docs/calibration.md")
		benchOut = flag.String("bench-out", "", "write a candidates/sec benchmark summary JSON to this file")
		traceOut = flag.String("trace-out", "", "write NDJSON span traces to this file (see docs/observability.md)")
	)
	flag.Parse()
	if *addr != "" && *shards != "" {
		log.Fatal("-addr and -shards are mutually exclusive: server-side search vs fleet-executed local search")
	}

	if *list {
		for _, name := range plan.Builtins() {
			s, _ := plan.Builtin(name)
			fmt.Printf("%-20s %s\n", name, s.Description)
		}
		return
	}
	if *dump != "" {
		spec, err := loadSpec(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if err := cliutil.DumpJSON(spec); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *specRef == "" {
		log.Fatal("no -spec given (try -spec builtin:bft-capacity, or -list)")
	}
	spec, err := loadSpec(*specRef)
	if err != nil {
		log.Fatal(err)
	}
	if *backend != "" {
		backends, err := cliutil.ParseBackends(*backend)
		if err != nil {
			log.Fatal(err)
		}
		// "sim" toggles frontier certification; "bounds" asks every
		// refined candidate for its worst-case bound (a hard SLO in the
		// spec already implies it).
		spec.SkipCertify = true
		for _, b := range backends {
			switch b {
			case sweep.BackendSim:
				spec.SkipCertify = false
			case sweep.BackendBounds:
				spec.WithBounds = true
			}
		}
	}

	// -calib loads a mined calibration map and turns on trust-gated
	// certification: regions the map shows the model is accurate in skip
	// their certification sim. The gate runs inside the search process,
	// so it composes with -shards but not -addr (attach a map to the
	// server via serve.WithCalibration instead).
	var calibMap *calib.Map
	if *calibRef != "" {
		if *addr != "" {
			log.Fatal("-calib does not apply with -addr: the trust gate runs in the search process (attach the map to the server instead)")
		}
		if _, err := os.Stat(*calibRef); err != nil {
			log.Fatalf("-calib %s: %v (mine one with cmd/calib)", *calibRef, err)
		}
		if calibMap, err = calib.LoadMap(*calibRef); err != nil {
			log.Fatal(err)
		}
		if spec.Calibration == nil {
			spec.Calibration = &plan.CalibSpec{} // defaults: MAPE ≤ 0.1, ≥ 3 pairs
		}
	}

	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()

	if *traceOut != "" {
		tracer, closeTracer, err := cliutil.OpenTracer(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := closeTracer(); err != nil {
				log.Printf("closing trace: %v", err)
			}
		}()
		ctx = obs.WithTracer(ctx, tracer)
	}

	start := time.Now()
	var res *plan.Result
	if *addr != "" {
		res, err = submit(ctx, *addr, spec, *stream, *quiet)
	} else {
		res, err = runLocal(ctx, spec, *shards, *cacheDir, calibMap, *stream, *quiet)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, res, time.Since(start)); err != nil {
			log.Fatal(err)
		}
	}
	if *stream {
		return // updates already went to stdout
	}
	if *jsonOut {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Print(res.Summary())
	fmt.Print(res.Table().String())
}

// runLocal executes the search in this process, in-process or over a
// shard fleet, consuming the update stream for progress/-stream.
func runLocal(ctx context.Context, spec plan.Spec, shards, cacheDir string, calibMap *calib.Map, stream, quiet bool) (*plan.Result, error) {
	var cache sweep.CacheStore
	if cacheDir != "" {
		st, err := store.Open(cacheDir)
		if err != nil {
			return nil, err
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("closing store: %v", err)
			}
		}()
		if !quiet {
			fmt.Fprintf(os.Stderr, "plan: store: %d cell(s) recovered from %s\n", st.Recovered(), cacheDir)
		}
		cache = st
	}

	var popts []plan.Option
	if calibMap != nil {
		popts = append(popts, plan.WithCalibration(calibMap))
	}
	var planner *plan.Planner
	if shards != "" {
		addrs, err := cliutil.ParseStrings(shards)
		if err != nil {
			return nil, err
		}
		var dopts []dispatch.Option
		if cache != nil {
			dopts = append(dopts, dispatch.WithCache(cache))
		}
		engine, err := dispatch.New(addrs, dopts...)
		if err != nil {
			return nil, err
		}
		planner = plan.New(engine, popts...)
	} else {
		planner = plan.NewLocal(cache, popts...)
	}

	enc := json.NewEncoder(os.Stdout)
	var res *plan.Result
	for u := range planner.Stream(ctx, spec) {
		if u.Err != nil {
			return nil, u.Err
		}
		if stream {
			if err := enc.Encode(u); err != nil {
				return nil, err
			}
		} else if !quiet {
			progress(u)
		}
		if u.Phase == plan.PhaseDone {
			res = u.Result
		}
	}
	if res == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("plan: stream ended without a result")
	}
	return res, nil
}

// submit posts the spec to a server's /v1/plan and consumes the NDJSON
// update stream. With a tracer on ctx the submission becomes a root
// span whose IDs travel in the request headers, so the server's spans
// stitch under it.
func submit(ctx context.Context, addr string, spec plan.Spec, stream, quiet bool) (res *plan.Result, err error) {
	name := spec.Name
	if name == "" {
		name = "anonymous"
	}
	ctx, span := obs.StartSpanKeyed(ctx, "plan.submit", name)
	defer func() {
		if err != nil {
			span.SetAttr(obs.String("error", err.Error()))
		}
		span.End()
	}()
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/plan", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(ctx, req.Header)
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var payload struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&payload) == nil && payload.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, payload.Error)
		}
		return nil, fmt.Errorf("server returned %s", resp.Status)
	}
	enc := json.NewEncoder(os.Stdout)
	sc := bufio.NewScanner(resp.Body)
	// The final done line carries the whole Result (every candidate),
	// so the line cap must scale to large design spaces, not row size.
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		var u plan.Update
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			return nil, fmt.Errorf("bad update line: %w", err)
		}
		if u.Err != nil {
			return nil, u.Err
		}
		if stream {
			if err := enc.Encode(u); err != nil {
				return nil, err
			}
		} else if !quiet {
			progress(u)
		}
		if u.Phase == plan.PhaseDone {
			res = u.Result
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("plan: server stream ended without a result")
	}
	return res, nil
}

// progress renders one update as a stderr progress line.
func progress(u plan.Update) {
	c := u.Candidate
	switch u.Phase {
	case plan.PhasePrune:
		fmt.Fprintf(os.Stderr, "plan: prune   %-26s %s\n", c.Key(), c.PruneReason)
	case plan.PhaseRefine:
		fmt.Fprintf(os.Stderr, "plan: refine  %-26s max_load=%.6f (%d probes)\n", c.Key(), c.MaxLoad, c.Probes)
	case plan.PhaseCertify:
		verdict := "certified"
		if !c.Certified {
			verdict = "NOT certified"
			if c.CertifyNote != "" {
				verdict = c.CertifyNote
			}
		}
		fmt.Fprintf(os.Stderr, "plan: certify %-26s sim=%.4f (%s)\n", c.Key(), c.Sim, verdict)
	case plan.PhaseFrontier:
		fmt.Fprintf(os.Stderr, "plan: frontier %-25s cost=%.0f latency=%.4f max_load=%.6f\n",
			c.Key(), c.Cost, c.Latency, c.MaxLoad)
	}
}

// writeBench records the planner's efficiency so CI can track it: how
// fast candidates are resolved and how many simulator runs the
// frontier-only certification saved against simulating every coarse
// cell.
func writeBench(path string, res *plan.Result, elapsed time.Duration) error {
	s := res.Stats
	// A hard-SLO (or -backend bounds) frontier carries worst-case
	// bounds; a certified sim mean above its own bound is a violation of
	// the calculus and CI gates on the count staying zero.
	bounded, violations := 0, 0
	for _, c := range res.Frontier {
		if math.IsNaN(c.BoundMax) && !c.BoundNA {
			continue
		}
		bounded++
		if !math.IsNaN(c.Sim) && !math.IsNaN(c.BoundMax) && c.Sim > c.BoundMax {
			violations++
		}
	}
	summary := struct {
		Name             string  `json:"name"`
		Candidates       int     `json:"candidates"`
		Frontier         int     `json:"frontier"`
		Certified        int     `json:"certified"`
		Bounded          int     `json:"bounded,omitempty"`
		BoundViolations  int     `json:"bound_violations"`
		AnalyticEvals    int     `json:"analytic_evals"`
		SimEvals         int     `json:"sim_evals"`
		SimEvalsSaved    int     `json:"sim_evals_saved_vs_grid"`
		Trusted          int     `json:"trusted,omitempty"`
		Escalated        int     `json:"escalated,omitempty"`
		Uncalibrated     int     `json:"uncalibrated,omitempty"`
		TrustSimSaved    int     `json:"sim_evals_saved_by_trust"`
		ElapsedMS        int64   `json:"elapsed_ms"`
		CandidatesPerSec float64 `json:"candidates_per_sec"`
	}{
		Name:            res.Spec.Name,
		Candidates:      s.Candidates,
		Frontier:        s.FrontierSize,
		Certified:       s.Certified,
		Bounded:         bounded,
		BoundViolations: violations,
		AnalyticEvals:   s.AnalyticEvals(),
		SimEvals:        s.SimEvals,
		// A sweep answering the same question simulates every coarse
		// cell; the planner simulates only the frontier.
		SimEvalsSaved: s.CoarseCells - s.SimEvals,
		Trusted:       s.Trusted,
		Escalated:     s.Escalated,
		Uncalibrated:  s.Uncalibrated,
		// Each trusted frontier member is one certification simulation
		// the always-escalate baseline would have run.
		TrustSimSaved: s.Trusted,
		ElapsedMS:     elapsed.Milliseconds(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		summary.CandidatesPerSec = float64(s.Candidates) / sec
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadSpec resolves a -spec argument: "builtin:<name>" or a JSON file
// path.
func loadSpec(ref string) (plan.Spec, error) {
	if name, ok := strings.CutPrefix(ref, "builtin:"); ok {
		return plan.Builtin(name)
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		return plan.Spec{}, err
	}
	spec, err := plan.ParseSpec(data)
	if err != nil {
		return plan.Spec{}, fmt.Errorf("%s: %w", ref, err)
	}
	return spec, nil
}
