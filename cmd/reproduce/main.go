// Command reproduce runs every experiment in DESIGN.md's index (Figure 3,
// the T1/T2 validation tables, ablations A1–A3, extensions X1/X2, and the
// V1 per-hop wait validation) and writes one artifact per experiment plus
// a SUMMARY.txt into an output directory.
//
// Usage:
//
//	reproduce [-out results] [-full] [-scale paper|small] [-seed 1]
//
// The default quick budget finishes in minutes; -full uses report-quality
// simulation windows. -scale small caps machine sizes at 256 processors
// for constrained CI machines.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	cliutil.Setup("reproduce")
	var (
		out     = flag.String("out", "results", "output directory")
		full    = flag.Bool("full", false, "use the report-quality simulation budget")
		scale   = flag.String("scale", "paper", "machine sizes: paper (N<=1024) or small (N<=256)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
	)
	flag.Parse()
	if *scale != "paper" && *scale != "small" {
		log.Fatalf("unknown scale %q", *scale)
	}
	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()
	summary, err := exp.RunAll(ctx, exp.RunAllConfig{
		Dir:    *out,
		Budget: cliutil.Budget(*full, *seed),
		Scale:  *scale,
		Log:    os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary)
	fmt.Printf("\nartifacts written to %s/\n", *out)
}
