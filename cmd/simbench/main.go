// Command simbench gates the simulator rewrite: it times the pre-rewrite
// dense per-cycle engine (preserved verbatim as sim.RunReference) against
// the event-driven engine with CI-width early stopping on the paper's
// 1024-processor butterfly fat-tree, at stable loads chosen as fractions
// of the analytic model's saturation load (the Table 2 style), and emits
// BENCH_sim.json with points/sec for both engines, the speedup, the
// steady-state allocation count, and the achieved precision.
//
// Two correctness gates guard the speed claim:
//
//   - bit-identity: with early stopping disabled, the event-driven engine
//     must reproduce the reference engine bit for bit at the first load
//     point (the same pin the sim package's tests enforce, re-checked
//     here on the benchmark scenario itself);
//   - agreement: each early-stopped estimate must agree with the
//     reference's full-window estimate within twice the combined 95% CI
//     half-widths.
//
// The process exits nonzero when either gate fails or the speedup falls
// below -min-speedup (default 10).
//
// Usage:
//
//	simbench [-n 1024] [-flits 16] [-out BENCH_sim.json] [-min-speedup 10]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/analytic"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// fracs are the benchmark's operating points as fractions of the model's
// saturation load: the stable region the paper validates in (Table 2 uses
// 20/50/80%; the top point is capped below the knee so the CI-width rule
// converges rather than chasing a drifting saturated series).
var fracs = []float64{0.2, 0.4, 0.6}

type pointReport struct {
	LoadFlits    float64 `json:"load_flits"`
	RefSeconds   float64 `json:"ref_seconds"`
	NewSeconds   float64 `json:"new_seconds"`
	RefLatency   float64 `json:"ref_latency"`
	NewLatency   float64 `json:"new_latency"`
	EarlyStopped bool    `json:"early_stopped"`
	Measured     int     `json:"measured_cycles"`
	Precision    float64 `json:"precision"`
	Replicas     int     `json:"replicas"`
}

type report struct {
	Name            string        `json:"name"`
	Topology        string        `json:"topology"`
	MsgFlits        int           `json:"msg_flits"`
	Warmup          int           `json:"warmup"`
	Measure         int           `json:"measure"`
	Points          []pointReport `json:"points"`
	RefPointsPerSec float64       `json:"ref_points_per_sec"`
	NewPointsPerSec float64       `json:"new_points_per_sec"`
	Speedup         float64       `json:"speedup"`
	MinSpeedup      float64       `json:"min_speedup"`
	AllocsPerOp     int64         `json:"allocs_per_op"`
	MeanReplicas    float64       `json:"mean_replicas"`
	MeanPrecision   float64       `json:"mean_precision"`
	BitIdentical    bool          `json:"bit_identical"`
	AgreementOK     bool          `json:"agreement_ok"`
}

func main() {
	cliutil.Setup("simbench")
	var (
		n        = flag.Int("n", 1024, "fat-tree processors (power of four)")
		flits    = flag.Int("flits", 16, "message length in flits")
		out      = flag.String("out", "BENCH_sim.json", "report file")
		minSpeed = flag.Float64("min-speedup", 10, "fail below this ref/new wall-clock ratio")
	)
	flag.Parse()

	net, err := topology.NewFatTree(*n)
	if err != nil {
		log.Fatal(err)
	}
	model := analytic.MustFatTreeModel(*n, float64(*flits), core.Options{})
	sat, err := model.SaturationLoad()
	if err != nil {
		log.Fatal(err)
	}
	budget := sweep.Quick
	base := sim.Config{
		Net:           net,
		MsgFlits:      *flits,
		Seed:          budget.Seed,
		WarmupCycles:  budget.Warmup,
		MeasureCycles: budget.Measure,
	}

	ctx := context.Background()
	rep := report{
		Name:       "simbench",
		Topology:   fmt.Sprintf("bft-%d", *n),
		MsgFlits:   *flits,
		Warmup:     budget.Warmup,
		Measure:    budget.Measure,
		MinSpeedup: *minSpeed,
	}

	var refTotal, newTotal time.Duration
	var precSum float64
	var repSum int
	agreementOK := true
	for _, frac := range fracs {
		cfg := base.FlitLoad(frac * sat)

		t0 := time.Now()
		ref, err := sim.RunReference(ctx, cfg)
		if err != nil {
			log.Fatalf("reference engine at load %.4f: %v", cfg.Lambda0*float64(*flits), err)
		}
		refDur := time.Since(t0)

		t0 = time.Now()
		res, err := sim.Run(ctx, cfg, sim.WithTermination(sim.DefaultTermination))
		if err != nil {
			log.Fatalf("event engine at load %.4f: %v", cfg.Lambda0*float64(*flits), err)
		}
		newDur := time.Since(t0)

		// Agreement gate: the early-stopped estimate must sit within twice
		// the combined CI band of the full-window reference.
		if diff := math.Abs(res.LatencyMean - ref.LatencyMean); diff > 2*(res.LatencyCI95+ref.LatencyCI95) {
			log.Printf("DISAGREEMENT at %.2f·sat: new %.3f±%.3f vs ref %.3f±%.3f",
				frac, res.LatencyMean, res.LatencyCI95, ref.LatencyMean, ref.LatencyCI95)
			agreementOK = false
		}

		refTotal += refDur
		newTotal += newDur
		precSum += res.Precision
		repSum += res.Replicas
		rep.Points = append(rep.Points, pointReport{
			LoadFlits:    frac * sat,
			RefSeconds:   refDur.Seconds(),
			NewSeconds:   newDur.Seconds(),
			RefLatency:   ref.LatencyMean,
			NewLatency:   res.LatencyMean,
			EarlyStopped: res.EarlyStopped,
			Measured:     res.MeasuredCycles,
			Precision:    res.Precision,
			Replicas:     res.Replicas,
		})
		log.Printf("load %.2f·sat: ref %v, new %v (%.1fx), measured %d cycles, precision %.4f",
			frac, refDur.Round(time.Millisecond), newDur.Round(time.Millisecond),
			refDur.Seconds()/newDur.Seconds(), res.MeasuredCycles, res.Precision)
	}

	// Bit-identity gate at the first load point: with early stopping off,
	// the rewrite is the same simulation, float for float.
	cfg := base.FlitLoad(fracs[0] * sat)
	ref, err := sim.RunReference(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep.BitIdentical = sameBits(ref.LatencyMean, res.LatencyMean) &&
		sameBits(ref.LatencyCI95, res.LatencyCI95) &&
		sameBits(ref.ThroughputFlits, res.ThroughputFlits) &&
		ref.TrackedCompleted == res.TrackedCompleted &&
		ref.Cycles == res.Cycles
	if !rep.BitIdentical {
		log.Printf("BIT DIVERGENCE: new %+v vs ref %+v", res, ref)
	}

	// Steady-state allocation count of one early-stopped run (pooled worm
	// slots, path buffers and the arrival calendar must make the cycle
	// loop allocation-free).
	allocCfg := base.FlitLoad(fracs[0] * sat)
	bench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(ctx, allocCfg, sim.WithTermination(sim.DefaultTermination)); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.AllocsPerOp = bench.AllocsPerOp()

	points := float64(len(fracs))
	rep.RefPointsPerSec = points / refTotal.Seconds()
	rep.NewPointsPerSec = points / newTotal.Seconds()
	rep.Speedup = refTotal.Seconds() / newTotal.Seconds()
	rep.MeanReplicas = float64(repSum) / points
	rep.MeanPrecision = precSum / points
	rep.AgreementOK = agreementOK

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("%.1fx speedup (%.1f -> %.1f points/sec), %d allocs/op, mean precision %.4f -> %s",
		rep.Speedup, rep.RefPointsPerSec, rep.NewPointsPerSec, rep.AllocsPerOp, rep.MeanPrecision, *out)

	switch {
	case !rep.BitIdentical:
		log.Fatal("FAIL: event-driven engine is not bit-identical to the reference with early stopping off")
	case !rep.AgreementOK:
		log.Fatal("FAIL: early-stopped estimates disagree with the reference beyond the CI band")
	case rep.Speedup < *minSpeed:
		log.Fatalf("FAIL: speedup %.1fx below the %.1fx gate", rep.Speedup, *minSpeed)
	}
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
