// Command validate regenerates experiment T1: the §3.6 validation grid.
// For every machine size and message length it compares the model's
// latency against flit-level simulation at several fractions of the
// saturation load, reporting relative errors.
//
// Usage:
//
//	validate [-sizes 64,256,1024] [-flits 16,32,64] [-fracs 0.2,0.5,0.8]
//	         [-full] [-csv] [-seed 1] [-dumpspec]
//
// The binary is a thin wrapper over the declarative sweep engine: the
// flags compile to a sweep spec (printable with -dumpspec, runnable with
// cmd/sweep) and only the table rendering lives here.
package main

import (
	"flag"
	"log"

	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	cliutil.Setup("validate")
	var (
		sizes = flag.String("sizes", "64,256,1024", "machine sizes (powers of four)")
		flits = flag.String("flits", "16,32,64", "message lengths in flits")
		fracs = flag.String("fracs", "0.2,0.5,0.8", "loads as fractions of model saturation")
		full  = flag.Bool("full", false, "use the report-quality simulation budget")
		csv   = flag.Bool("csv", false, "emit CSV")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		dump  = flag.Bool("dumpspec", false, "print the sweep spec for these flags as JSON and exit")
	)
	flag.Parse()

	ns, err := cliutil.ParseInts(*sizes)
	if err != nil {
		log.Fatal(err)
	}
	ss, err := cliutil.ParseInts(*flits)
	if err != nil {
		log.Fatal(err)
	}
	fs, err := cliutil.ParseFloats(*fracs)
	if err != nil {
		log.Fatal(err)
	}
	if *dump {
		if err := cliutil.DumpJSON(exp.GridSpec(ns, ss, fs, cliutil.Budget(*full, *seed))); err != nil {
			log.Fatal(err)
		}
		return
	}
	rows, err := exp.ValidationGrid(ns, ss, fs, cliutil.Budget(*full, *seed))
	if err != nil {
		log.Fatal(err)
	}
	cliutil.Output(exp.GridTable(rows), *csv)
}
