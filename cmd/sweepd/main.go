// Command sweepd is the sweep service daemon: a long-running HTTP server
// over the Evaluator backends, so sweeps and single-scenario evaluations
// can be submitted by thin clients (cmd/sweep -addr, curl, or a fleet of
// eval.RemoteBackend shards) while models, saturation searches and
// simulator networks stay memoized in one process. With -cache-dir every
// computed cell is also persisted to an append-only result store and
// survives restarts.
//
// Usage:
//
//	sweepd                                  # serve on :8713
//	sweepd -addr :9000 -workers 8           # custom port and pool bound
//	sweepd -cache-dir /var/lib/sweepd       # persistent result store
//	sweepd -compact -cache-dir d            # compact the store and exit
//
// Endpoints (see docs/serve.md): POST /v1/sweep (NDJSON stream),
// POST /v1/eval, POST /v1/curve, GET /v1/builtins, GET /healthz.
//
// SIGINT/SIGTERM trigger a graceful shutdown: new connections are
// refused, in-flight streams get -grace to finish, then connections are
// force-closed (which cancels their sweeps) and the store is flushed.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/sweep"
)

func main() {
	cliutil.Setup("sweepd")
	var (
		addr     = flag.String("addr", ":8713", "listen address")
		cacheDir = flag.String("cache-dir", "", "persist results to this directory (empty = in-memory only)")
		workers  = flag.Int("workers", 0, "worker pool bound per sweep (0 = GOMAXPROCS)")
		grace    = flag.Duration("grace", 5*time.Second, "graceful-shutdown window for in-flight requests")
		compact  = flag.Bool("compact", false, "compact -cache-dir into one segment and exit")
	)
	flag.Parse()

	var cache sweep.CacheStore = sweep.NewCache()
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("closing store: %v", err)
			}
		}()
		if dropped := st.Dropped(); dropped > 0 {
			log.Printf("store recovery dropped %d corrupt line(s)", dropped)
		}
		log.Printf("store: %d cell(s) recovered from %s", st.Recovered(), *cacheDir)
		if *compact {
			if err := st.Compact(); err != nil {
				log.Fatal(err)
			}
			log.Printf("store compacted: %d live cell(s)", st.Len())
			return
		}
		cache = st
	} else if *compact {
		log.Fatal("-compact needs -cache-dir")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("listening on %s", *addr)
	err := serve.ListenAndServe(ctx, *addr, *grace,
		serve.WithCache(cache), serve.WithWorkers(*workers))
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	if err != nil {
		log.Printf("shutdown: %v", err)
	} else {
		log.Printf("shutdown: clean")
	}
}
