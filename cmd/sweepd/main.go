// Command sweepd is the sweep service daemon: a long-running HTTP server
// over the Evaluator backends, so sweeps and single-scenario evaluations
// can be submitted by thin clients (cmd/sweep -addr, curl, or a fleet of
// eval.RemoteBackend shards) while models, saturation searches and
// simulator networks stay memoized in one process. With -cache-dir every
// computed cell is also persisted to an append-only result store and
// survives restarts.
//
// Usage:
//
//	sweepd                                  # serve on :8713
//	sweepd -addr :9000 -workers 8           # custom port and pool bound
//	sweepd -cache-dir /var/lib/sweepd       # persistent result store
//	sweepd -cache-dir d -cache-max-bytes 64000000   # prune the store at startup
//	sweepd -cache-dir d -cache-max-bytes 64000000 -prune-interval 10m
//	                                        # …and keep it bounded while serving
//	sweepd -compact -cache-dir d            # compact the store and exit
//	sweepd -shards :8714,:8715,:8716        # front-end: dispatch sweeps
//	sweepd -trace-out trace.ndjson          # NDJSON span traces
//	sweepd -log-level debug                 # structured logs, every request
//	sweepd -debug-addr 127.0.0.1:6060       # pprof on a separate listener
//
// Endpoints (see docs/serve.md): POST /v1/sweep (NDJSON stream),
// POST /v1/plan (capacity-planner searches, see docs/plan.md),
// POST /v1/batch and POST /v1/sweep/part (batched wire protocol),
// POST /v1/eval, POST /v1/curve, GET /v1/builtins, GET /v1/calib
// (model-vs-sim calibration report, with -cache-dir), GET /healthz,
// GET /metrics (Prometheus text).
//
// With -cache-dir the daemon also maintains a calibration map
// (calib-map.json next to the store segments, see docs/calibration.md):
// recovered and topped up from the store at startup, fed live by every
// sim-carrying cell the daemon computes, persisted on shutdown, and
// served on /v1/calib, /healthz and /metrics.
//
// With -shards the daemon becomes a fleet front-end: POST /v1/sweep
// requests are scheduled across the named downstream sweepd shards by
// the dispatch coordinator (contiguous grid ranges out, merged NDJSON
// back — see docs/dispatch.md; -batch bounds the range size) and
// POST /v1/plan searches run over the same fleet (coarse grids
// dispatched, refinement probes rotated per-cell), while the other
// endpoints keep answering locally.
//
// SIGINT/SIGTERM trigger a graceful shutdown: new connections are
// refused, in-flight streams get -grace to finish, then connections are
// force-closed (which cancels their sweeps) and the store and any
// -trace-out tracer are flushed.
//
// Observability (see docs/observability.md): -trace-out writes NDJSON
// span traces (request spans plus the engine spans under them, stitched
// to the caller's trace via the X-Obs-Trace/X-Obs-Span headers);
// -log-level selects the structured-log threshold (debug logs every
// request); -debug-addr serves net/http/pprof on a separate listener,
// so profiling never rides the public mux.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/calib"
	"repro/internal/cliutil"
	"repro/internal/dispatch"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/sweep"
)

func main() {
	cliutil.Setup("sweepd")
	var (
		addr      = flag.String("addr", ":8713", "listen address")
		cacheDir  = flag.String("cache-dir", "", "persist results to this directory (empty = in-memory only)")
		maxBytes  = flag.Int64("cache-max-bytes", 0, "prune -cache-dir to this many bytes at startup, oldest cells first (0 = unbounded)")
		pruneTick = flag.Duration("prune-interval", 0, "also re-prune -cache-dir to -cache-max-bytes this often while serving (0 = startup only)")
		workers   = flag.Int("workers", 0, "worker pool bound per sweep (0 = GOMAXPROCS)")
		grace     = flag.Duration("grace", 5*time.Second, "graceful-shutdown window for in-flight requests")
		compact   = flag.Bool("compact", false, "compact -cache-dir into one segment and exit")
		shardList = flag.String("shards", "", "front-end mode: dispatch /v1/sweep across these downstream sweepd shard(s), comma-separated")
		batch     = flag.Int("batch", 0, "front-end mode: cells per dispatched range (0 = auto)")
		traceOut  = flag.String("trace-out", "", "write NDJSON span traces to this file, flushed on shutdown")
		logLevel  = flag.String("log-level", "info", "structured-log threshold: debug, info, warn or error (debug logs every request)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (never on the public mux)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		log.Fatalf("bad -log-level %q: %v", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var cache sweep.CacheStore = sweep.NewCache()
	var calibMap *calib.Map
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				logger.Error("closing store", "err", err)
			}
		}()
		if dropped := st.Dropped(); dropped > 0 {
			logger.Warn("store recovery dropped corrupt lines", "dropped", dropped)
		}
		logger.Info("store recovered", "cells", st.Recovered(), "dir", *cacheDir)
		if *maxBytes > 0 {
			// Startup prune: the daemon owns the directory exclusively for
			// its whole lifetime, so pruning here — and periodically below —
			// is safe alongside its own serving traffic.
			evicted, err := st.Prune(*maxBytes)
			if err != nil {
				log.Fatal(err)
			}
			size, _ := st.DiskBytes()
			logger.Info("store pruned", "bytes", size, "bound", *maxBytes,
				"evicted", evicted, "live", st.Len())
			if *pruneTick > 0 {
				stop := st.StartAutoPrune(*maxBytes, *pruneTick, func(err error) {
					logger.Error("auto-prune", "err", err)
				})
				defer stop()
				logger.Info("store auto-prune enabled", "interval", *pruneTick, "bound", *maxBytes)
			}
		} else if *pruneTick > 0 {
			log.Fatal("-prune-interval needs -cache-max-bytes")
		}
		if *compact {
			if err := st.Compact(); err != nil {
				log.Fatal(err)
			}
			logger.Info("store compacted", "live", st.Len())
			return
		}
		cache = st
		// The calibration map lives next to the store segments: recover
		// it, top it up from any cells that landed while the daemon was
		// down, feed it live while serving, and persist it on shutdown.
		mapPath := calib.MapPath(*cacheDir)
		m, err := calib.LoadMap(mapPath)
		if err != nil {
			log.Fatal(err)
		}
		if mined := m.Mine(context.Background(), st); mined > 0 {
			logger.Info("calibration mined", "new_pairs", mined)
		}
		sum := m.Summary()
		logger.Info("calibration map recovered", "pairs", sum.Pairs, "regions", sum.Regions)
		defer func() {
			if err := m.Save(mapPath); err != nil {
				logger.Error("saving calibration map", "err", err)
			}
		}()
		calibMap = m
	} else if *compact {
		log.Fatal("-compact needs -cache-dir")
	} else if *maxBytes > 0 {
		log.Fatal("-cache-max-bytes needs -cache-dir")
	} else if *pruneTick > 0 {
		log.Fatal("-prune-interval needs -cache-dir")
	}

	opts := []serve.Option{
		serve.WithCache(cache),
		serve.WithWorkers(*workers),
		serve.WithLogger(logger),
	}
	if calibMap != nil {
		opts = append(opts, serve.WithCalibration(calibMap))
	}
	if *traceOut != "" {
		tracer, closeTracer, err := cliutil.OpenTracer(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := closeTracer(); err != nil {
				logger.Error("closing trace", "err", err)
			}
		}()
		opts = append(opts, serve.WithTracer(tracer))
		logger.Info("tracing enabled", "file", *traceOut)
	}
	if *shardList != "" {
		shards, err := cliutil.ParseStrings(*shardList)
		if err != nil {
			log.Fatal(err)
		}
		// One dispatcher backs both fronts — /v1/sweep via its Stream,
		// /v1/plan via its Run/Evaluate engine surface (the server
		// detects it): one shard-health and backoff state, one counter
		// set, one cache salt.
		dopts := []dispatch.Option{dispatch.WithBatch(*batch), dispatch.WithCache(cache)}
		if calibMap != nil {
			// Front-end mode: cells computed on remote shards stream back
			// through the dispatcher, so the front-end's map observes the
			// whole fleet's sim results.
			dopts = append(dopts, dispatch.WithCalibration(calibMap))
		}
		d, err := dispatch.New(shards, dopts...)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("front-end: dispatching sweeps and plans", "shards", len(d.Addrs()))
		opts = append(opts, serve.WithSweeper(d))
	}

	if *debugAddr != "" {
		// pprof gets its own mux on its own listener: the public mux
		// never exposes /debug, whatever else registers on the default
		// mux.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Error("pprof listener", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	logger.Info("listening", "addr", *addr)
	err := serve.ListenAndServe(ctx, *addr, *grace, opts...)
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	if err != nil {
		logger.Warn("shutdown", "err", err)
	} else {
		logger.Info("shutdown: clean")
	}
}
