// Command sweepd is the sweep service daemon: a long-running HTTP server
// over the Evaluator backends, so sweeps and single-scenario evaluations
// can be submitted by thin clients (cmd/sweep -addr, curl, or a fleet of
// eval.RemoteBackend shards) while models, saturation searches and
// simulator networks stay memoized in one process. With -cache-dir every
// computed cell is also persisted to an append-only result store and
// survives restarts.
//
// Usage:
//
//	sweepd                                  # serve on :8713
//	sweepd -addr :9000 -workers 8           # custom port and pool bound
//	sweepd -cache-dir /var/lib/sweepd       # persistent result store
//	sweepd -cache-dir d -cache-max-bytes 64000000   # prune the store at startup
//	sweepd -cache-dir d -cache-max-bytes 64000000 -prune-interval 10m
//	                                        # …and keep it bounded while serving
//	sweepd -compact -cache-dir d            # compact the store and exit
//	sweepd -shards :8714,:8715,:8716        # front-end: dispatch sweeps
//
// Endpoints (see docs/serve.md): POST /v1/sweep (NDJSON stream),
// POST /v1/plan (capacity-planner searches, see docs/plan.md),
// POST /v1/batch and POST /v1/sweep/part (batched wire protocol),
// POST /v1/eval, POST /v1/curve, GET /v1/builtins, GET /healthz,
// GET /metrics (Prometheus text).
//
// With -shards the daemon becomes a fleet front-end: POST /v1/sweep
// requests are scheduled across the named downstream sweepd shards by
// the dispatch coordinator (contiguous grid ranges out, merged NDJSON
// back — see docs/dispatch.md; -batch bounds the range size) and
// POST /v1/plan searches run over the same fleet (coarse grids
// dispatched, refinement probes rotated per-cell), while the other
// endpoints keep answering locally.
//
// SIGINT/SIGTERM trigger a graceful shutdown: new connections are
// refused, in-flight streams get -grace to finish, then connections are
// force-closed (which cancels their sweeps) and the store is flushed.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/dispatch"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/sweep"
)

func main() {
	cliutil.Setup("sweepd")
	var (
		addr      = flag.String("addr", ":8713", "listen address")
		cacheDir  = flag.String("cache-dir", "", "persist results to this directory (empty = in-memory only)")
		maxBytes  = flag.Int64("cache-max-bytes", 0, "prune -cache-dir to this many bytes at startup, oldest cells first (0 = unbounded)")
		pruneTick = flag.Duration("prune-interval", 0, "also re-prune -cache-dir to -cache-max-bytes this often while serving (0 = startup only)")
		workers   = flag.Int("workers", 0, "worker pool bound per sweep (0 = GOMAXPROCS)")
		grace     = flag.Duration("grace", 5*time.Second, "graceful-shutdown window for in-flight requests")
		compact   = flag.Bool("compact", false, "compact -cache-dir into one segment and exit")
		shardList = flag.String("shards", "", "front-end mode: dispatch /v1/sweep across these downstream sweepd shard(s), comma-separated")
		batch     = flag.Int("batch", 0, "front-end mode: cells per dispatched range (0 = auto)")
	)
	flag.Parse()

	var cache sweep.CacheStore = sweep.NewCache()
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("closing store: %v", err)
			}
		}()
		if dropped := st.Dropped(); dropped > 0 {
			log.Printf("store recovery dropped %d corrupt line(s)", dropped)
		}
		log.Printf("store: %d cell(s) recovered from %s", st.Recovered(), *cacheDir)
		if *maxBytes > 0 {
			// Startup prune: the daemon owns the directory exclusively for
			// its whole lifetime, so pruning here — and periodically below —
			// is safe alongside its own serving traffic.
			evicted, err := st.Prune(*maxBytes)
			if err != nil {
				log.Fatal(err)
			}
			size, _ := st.DiskBytes()
			log.Printf("store pruned to %d byte(s) (bound %d): %d cell(s) evicted, %d live",
				size, *maxBytes, evicted, st.Len())
			if *pruneTick > 0 {
				stop := st.StartAutoPrune(*maxBytes, *pruneTick, func(err error) {
					log.Printf("auto-prune: %v", err)
				})
				defer stop()
				log.Printf("store auto-prune: every %s to %d byte(s)", *pruneTick, *maxBytes)
			}
		} else if *pruneTick > 0 {
			log.Fatal("-prune-interval needs -cache-max-bytes")
		}
		if *compact {
			if err := st.Compact(); err != nil {
				log.Fatal(err)
			}
			log.Printf("store compacted: %d live cell(s)", st.Len())
			return
		}
		cache = st
	} else if *compact {
		log.Fatal("-compact needs -cache-dir")
	} else if *maxBytes > 0 {
		log.Fatal("-cache-max-bytes needs -cache-dir")
	} else if *pruneTick > 0 {
		log.Fatal("-prune-interval needs -cache-dir")
	}

	opts := []serve.Option{serve.WithCache(cache), serve.WithWorkers(*workers)}
	if *shardList != "" {
		shards, err := cliutil.ParseStrings(*shardList)
		if err != nil {
			log.Fatal(err)
		}
		// One dispatcher backs both fronts — /v1/sweep via its Stream,
		// /v1/plan via its Run/Evaluate engine surface (the server
		// detects it): one shard-health and backoff state, one counter
		// set, one cache salt.
		d, err := dispatch.New(shards, dispatch.WithBatch(*batch), dispatch.WithCache(cache))
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("front-end: dispatching sweeps and plans across %d shard(s)", len(d.Addrs()))
		opts = append(opts, serve.WithSweeper(d))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("listening on %s", *addr)
	err := serve.ListenAndServe(ctx, *addr, *grace, opts...)
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	if err != nil {
		log.Printf("shutdown: %v", err)
	} else {
		log.Printf("shutdown: clean")
	}
}
