// Command hypercube regenerates the extension experiments X1 and X2: the
// paper's general model applied to a binary hypercube, validated against
// flit-level simulation (X1), and the k-ary n-cube model's consistency
// with the hypercube model at k = 2 (X2, with -torus). X1 compiles to a
// declarative sweep spec (printable with -dumpspec, runnable with
// cmd/sweep) executed through the Evaluator backends.
//
// Usage:
//
//	hypercube [-dims 8] [-flits 16] [-points 6] [-full] [-torus] [-csv]
//	          [-seed 1] [-timeout 0] [-dumpspec]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/sweep"
)

func main() {
	cliutil.Setup("hypercube")
	var (
		dims    = flag.Int("dims", 8, "cube dimensions (2^dims processors)")
		flits   = flag.Int("flits", 16, "message length in flits")
		points  = flag.Int("points", 6, "loads per curve")
		full    = flag.Bool("full", false, "use the report-quality simulation budget")
		torus   = flag.Bool("torus", false, "run the X2 torus consistency check instead")
		csv     = flag.Bool("csv", false, "emit CSV")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
		dump    = flag.Bool("dumpspec", false, "print the X1 sweep spec for these flags as JSON and exit")
	)
	flag.Parse()

	if *dump {
		spec, err := exp.HypercubeSpec(*dims, *flits, *points, cliutil.Budget(*full, *seed))
		if err != nil {
			log.Fatal(err)
		}
		if err := cliutil.DumpJSON(spec); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *torus {
		tbl, maxDiff, err := exp.TorusConsistency(*dims, *flits, *points)
		if err != nil {
			log.Fatal(err)
		}
		if !*csv {
			fmt.Printf("X2: 2-ary %d-cube torus model vs hypercube model (max diff %.2e)\n",
				*dims, maxDiff)
		}
		cliutil.Output(tbl, *csv)
		return
	}

	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()
	res, err := exp.HypercubeRun(ctx, *dims, *flits, *points, cliutil.Budget(*full, *seed),
		sweep.NewRunner())
	if err != nil {
		log.Fatal(err)
	}
	if !*csv {
		fmt.Printf("X1: binary %d-cube (%d PEs), %d-flit messages; model saturation %.4f flits/cyc/PE\n",
			res.Dims, 1<<res.Dims, res.MsgFlits, res.SaturationLoad)
	}
	cliutil.Output(res.Table(), *csv)
}
