// Command hypercube regenerates the extension experiments X1 and X2: the
// paper's general model applied to a binary hypercube, validated against
// flit-level simulation (X1), and the k-ary n-cube model's consistency
// with the hypercube model at k = 2 (X2, with -torus).
//
// Usage:
//
//	hypercube [-dims 8] [-flits 16] [-points 6] [-full] [-torus] [-csv] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hypercube: ")
	var (
		dims   = flag.Int("dims", 8, "cube dimensions (2^dims processors)")
		flits  = flag.Int("flits", 16, "message length in flits")
		points = flag.Int("points", 6, "loads per curve")
		full   = flag.Bool("full", false, "use the report-quality simulation budget")
		torus  = flag.Bool("torus", false, "run the X2 torus consistency check instead")
		csv    = flag.Bool("csv", false, "emit CSV")
		seed   = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	if *torus {
		tbl, maxDiff, err := exp.TorusConsistency(*dims, *flits, *points)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			fmt.Fprint(os.Stdout, tbl.CSV())
			return
		}
		fmt.Printf("X2: 2-ary %d-cube torus model vs hypercube model (max diff %.2e)\n",
			*dims, maxDiff)
		fmt.Print(tbl.String())
		return
	}

	res, err := exp.Hypercube(*dims, *flits, *points, cliutil.Budget(*full, *seed))
	if err != nil {
		log.Fatal(err)
	}
	tbl := res.Table()
	if *csv {
		fmt.Fprint(os.Stdout, tbl.CSV())
		return
	}
	fmt.Printf("X1: binary %d-cube (%d PEs), %d-flit messages; model saturation %.4f flits/cyc/PE\n",
		res.Dims, 1<<res.Dims, res.MsgFlits, res.SaturationLoad)
	fmt.Print(tbl.String())
}
