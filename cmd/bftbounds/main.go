// Command bftbounds derives the network-calculus worst-case latency
// bound for one butterfly fat-tree operating point, printing the
// per-hop composition — burst σ, delay and backlog at every channel
// class on the longest route — alongside the end-to-end guarantee. The
// companion of cmd/bftmodel (mean latency) for hard-deadline sizing;
// see docs/bounds.md for the calculus.
//
// Usage:
//
//	bftbounds [-n 64] [-flits 16] [-load 0.02]
//	bftbounds -n 64 -load 0.02 -onfrac 0.25 -burstcycles 200   # MMPP envelope
//	bftbounds -n 64 -load 0.02 -json                           # machine-readable
//
// -load is in flits/cycle per processor (the Figure 3 axis). With
// -onfrac/-burstcycles the per-source envelope is the MMPP on-off
// burst instead of the Poisson unit burst.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analytic"
	"repro/internal/bounds"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/series"
	"repro/internal/workload"
)

func main() {
	cliutil.Setup("bftbounds")
	var (
		n           = flag.Int("n", 64, "number of processors (power of four)")
		flits       = flag.Float64("flits", 16, "message length in flits")
		load        = flag.Float64("load", 0.02, "offered load (flits/cycle per processor)")
		onfrac      = flag.Float64("onfrac", 0, "MMPP on-fraction in (0,1] (0 = steady Poisson sources)")
		burstCycles = flag.Float64("burstcycles", 0, "MMPP mean burst length in cycles (with -onfrac)")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON instead of a table")
		csv         = flag.Bool("csv", false, "emit the per-hop table as CSV")
	)
	flag.Parse()

	model, err := analytic.NewFatTreeModel(*n, *flits, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lambda0 := *load / *flits

	var wl *workload.Spec
	if *onfrac > 0 {
		wl = &workload.Spec{
			Name:        "burst",
			Process:     workload.ProcessMMPP,
			OnFrac:      *onfrac,
			BurstCycles: *burstCycles,
		}
		if err := wl.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	burst, ok := bounds.Envelope(wl, lambda0)
	if !ok {
		log.Fatalf("no deterministic (σ,ρ) envelope for workload %s", wl.Label())
	}

	rep, err := bounds.Compute(model, lambda0, burst)
	if err != nil {
		log.Fatalf("load %.4f flits/cycle/PE: %v", *load, err)
	}

	if *jsonOut {
		if err := cliutil.DumpJSON(rep); err != nil {
			log.Fatal(err)
		}
		return
	}

	if !*csv {
		fmt.Printf("butterfly fat-tree N=%d, s=%g flits, load=%.4f flits/cycle/PE (λ0=%.6g, per-source burst σ=%.3f msg)\n",
			*n, *flits, *load, lambda0, rep.Burst)
		fmt.Printf("  worst-case latency bound = %.3f cycles (mean model L is cmd/bftmodel's Eq. 25)\n", rep.Total)
		fmt.Printf("  max per-hop backlog      = %.1f flits\n\n", rep.MaxBacklog)
	}
	tbl := &series.Table{Headers: []string{"hop", "m", "service x̄", "ρ", "sources", "σ (msg)", "delay", "backlog (flits)"}}
	for _, h := range rep.Hops {
		tbl.AddRow(h.Name,
			fmt.Sprintf("%d", h.Servers),
			fmt.Sprintf("%.3f", h.Service),
			fmt.Sprintf("%.4f", h.Rho),
			fmt.Sprintf("%d", h.Sources),
			fmt.Sprintf("%.3f", h.Sigma),
			fmt.Sprintf("%.3f", h.Delay),
			fmt.Sprintf("%.1f", h.Backlog))
	}
	cliutil.Output(tbl, *csv)
}
