// Command calib mines a persistent result store into a calibration map
// and reports model-vs-sim accuracy per region: every cached cell that
// carries both an analytic prediction and a simulator measurement
// becomes a calibration pair, bucketed by topology, message length,
// policy, workload and load band (see internal/calib and
// docs/calibration.md). The map persists as calib-map.json next to the
// store segments, so repeated runs only mine cells the map has not seen.
//
// With -check the command gates instead of reporting: it exits non-zero
// when the map is empty, carries a non-finite MAPE, or is stale against
// the store (cells the map has not observed) — the calibration smoke's
// freshness gate.
//
// Usage:
//
//	calib -store DIR                 # mine DIR, report, save DIR/calib-map.json
//	calib -store DIR -json           # the report plus mining stats as JSON
//	calib -store DIR -check          # freshness/coverage gate (no output on ok)
//	calib -store DIR -out map.json   # save the map elsewhere
//	calib -map map.json -json        # report a saved map without a store
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/calib"
	"repro/internal/cliutil"
	"repro/internal/store"
)

func main() {
	cliutil.Setup("calib")
	var (
		storeDir = flag.String("store", "", "persistent result store directory to mine (cmd/sweep -cache-dir)")
		mapPath  = flag.String("map", "", "calibration map file to load and update (default <store>/calib-map.json)")
		outPath  = flag.String("out", "", "where to save the updated map (default: the -map path)")
		jsonOut  = flag.Bool("json", false, "emit the report plus mining stats as JSON")
		check    = flag.Bool("check", false, "gate: non-zero exit when the map is empty, has a non-finite MAPE, or is stale against the store")
		maxMAPE  = flag.Float64("max-mape", 0.1, "trust threshold annotated per region in the report")
		minPairs = flag.Int("min-pairs", 3, "minimum pairs per region for a trust verdict")
	)
	flag.Parse()

	if *storeDir == "" && *mapPath == "" {
		log.Fatal("nothing to do: pass -store DIR to mine a store, or -map FILE to report a saved map")
	}
	path := *mapPath
	if path == "" {
		path = calib.MapPath(*storeDir)
	}
	save := *outPath
	if save == "" {
		save = path
	}

	m, err := calib.LoadMap(path)
	if err != nil {
		log.Fatal(err)
	}

	var stale, added int
	var mineSecs float64
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		stale = m.Staleness(st)
		start := time.Now()
		added = m.Mine(context.Background(), st)
		mineSecs = time.Since(start).Seconds()
		if err := m.Save(save); err != nil {
			log.Fatal(err)
		}
	}

	rep := m.Report()
	if *check {
		runCheck(rep, stale)
		return
	}

	if *jsonOut {
		out := struct {
			calib.Report
			StaleCells  int     `json:"stale_cells"`
			PairsAdded  int     `json:"pairs_added"`
			MineMS      float64 `json:"mine_ms"`
			PairsPerSec float64 `json:"pairs_per_sec,omitempty"`
		}{Report: rep, StaleCells: stale, PairsAdded: added, MineMS: mineSecs * 1e3}
		if mineSecs > 0 {
			out.PairsPerSec = float64(added) / mineSecs
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	printReport(rep, stale, added, mineSecs, calib.Gate{MaxMAPE: *maxMAPE, MinPairs: *minPairs}, m)
}

// runCheck is the -check gate: regions exist, every MAPE is finite, and
// the map has observed every sim-carrying cell the store holds.
func runCheck(rep calib.Report, stale int) {
	if len(rep.Regions) == 0 {
		log.Fatal("calibration check failed: map has no regions (mine a with-sim store first)")
	}
	for _, r := range rep.Regions {
		if math.IsNaN(r.MAPE) || math.IsInf(r.MAPE, 0) {
			log.Fatalf("calibration check failed: region %s has non-finite MAPE", r.Name)
		}
	}
	if stale > 0 {
		log.Fatalf("calibration check failed: %d store cell(s) not yet observed by the map", stale)
	}
	fmt.Printf("calibration ok: %d pair(s) across %d region(s), map fresh\n", rep.Pairs, len(rep.Regions))
}

// printReport renders the human-readable region table with the verdict
// each region would get under the given gate.
func printReport(rep calib.Report, stale, added int, mineSecs float64, gate calib.Gate, m *calib.Map) {
	fmt.Printf("calibration map: %d pair(s) across %d region(s)", rep.Pairs, len(rep.Regions))
	if added > 0 {
		fmt.Printf("; mined %d new pair(s) in %.0f ms", added, mineSecs*1e3)
	}
	if stale > 0 {
		fmt.Printf("; was %d cell(s) stale before mining", stale)
	}
	fmt.Println()
	if rep.WorstMAPE != nil {
		fmt.Printf("worst region: %s (MAPE %.3g)\n", rep.WorstRegion, *rep.WorstMAPE)
	}
	if len(rep.Regions) == 0 {
		return
	}
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "REGION\tPAIRS\tMAPE\tBIAS\tPEARSON\tMAXREL\tVERDICT")
	for _, r := range rep.Regions {
		verdict, _, _ := m.Verdict(r.Region, gate)
		pearson := "-"
		if r.Pearson != nil {
			pearson = fmt.Sprintf("%.3f", *r.Pearson)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3g\t%+.3g\t%s\t%.3g\t%s\n",
			r.Name, r.Pairs, r.MAPE, r.Bias, pearson, r.MaxRelErr, verdict)
	}
	tw.Flush()
}
