// Command bftmodel evaluates the analytical fat-tree model at one
// operating point, printing the latency decomposition (Eq. 25) and the
// per-channel-class service times, waits and utilizations of §3.3. With
// -inspect it dumps the switch wiring instead (the structure of the
// paper's Figure 2), and with -saturation it solves Eq. 26.
//
// Usage:
//
//	bftmodel [-n 1024] [-flits 16] [-load 0.02] [-inspect] [-saturation]
//
// -load is in flits/cycle per processor (the Figure 3 axis).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cliutil"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/series"
	"repro/internal/topology"
)

func main() {
	cliutil.Setup("bftmodel")
	var (
		n       = flag.Int("n", 1024, "number of processors (power of four)")
		flits   = flag.Float64("flits", 16, "message length in flits")
		load    = flag.Float64("load", 0.02, "offered load (flits/cycle per processor)")
		inspect = flag.Bool("inspect", false, "dump the switch wiring and exit")
		sat     = flag.Bool("saturation", false, "solve Eq. 26 and exit")
	)
	flag.Parse()

	if *inspect {
		ft, err := topology.NewFatTree(*n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(ft.Describe())
		return
	}

	model, err := analytic.NewFatTreeModel(*n, *flits, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if *sat {
		s, err := model.SaturationLoad()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saturation: %.6f flits/cycle/PE (%.6f messages/cycle/PE)\n",
			s, s / *flits)
		return
	}

	lambda0 := *load / *flits
	lat, err := model.Latency(lambda0)
	if err != nil {
		log.Fatalf("load %.4f flits/cycle/PE: %v", *load, err)
	}
	fmt.Printf("butterfly fat-tree N=%d, s=%g flits, load=%.4f flits/cycle/PE (λ0=%.6g)\n",
		*n, *flits, *load, lambda0)
	fmt.Printf("  average latency L      = %.3f cycles (Eq. 25)\n", lat.Total)
	fmt.Printf("  injection wait  W(0,1) = %.3f cycles\n", lat.WaitInj)
	fmt.Printf("  injection svc   x(0,1) = %.3f cycles\n", lat.ServiceInj)
	fmt.Printf("  average distance D     = %.3f channels\n\n", lat.AvgDist)

	stats, err := model.ChannelStats(lambda0)
	if err != nil {
		log.Fatal(err)
	}
	tbl := &series.Table{Headers: []string{"class", "m", "rate λ", "service x̄", "wait W̄", "ρ"}}
	for _, st := range stats {
		tbl.AddRow(st.Name,
			fmt.Sprintf("%d", st.Servers),
			fmt.Sprintf("%.6f", st.Rate),
			fmt.Sprintf("%.3f", st.Service),
			fmt.Sprintf("%.3f", st.Wait),
			fmt.Sprintf("%.4f", st.Rho))
	}
	fmt.Print(tbl.String())
}
