// Command bftsim runs one flit-level simulation of the butterfly fat-tree
// (or a binary hypercube with -cube) and prints the measured latency,
// throughput, and per-channel-kind utilizations.
//
// Usage:
//
//	bftsim [-n 1024] [-flits 16] [-load 0.02] [-warmup 10000]
//	       [-measure 50000] [-seed 1] [-policy pairqueue|randomfixed]
//	       [-cube dims] [-precision 0.05] [-replicas 4]
//	       [-workload '{"process":"mmpp","on_frac":0.25,"burst_cycles":200}']
//
// -workload applies a declarative workload spec (see docs/workload.md):
// bursty arrival processes, per-source rate mixes, and destination
// patterns beyond uniform. Empty keeps the paper's steady uniform
// Poisson workload.
//
// -precision enables CI-width early stopping: the run ends as soon as
// the latency estimate's relative 95% half-width drops to the given
// value, with -measure acting as a ceiling. -replicas runs independent
// replicas concurrently and pools their statistics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/cliutil"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	cliutil.Setup("bftsim")
	var (
		n       = flag.Int("n", 1024, "number of processors (power of four)")
		cube    = flag.Int("cube", 0, "simulate a binary hypercube of this many dimensions instead")
		flits   = flag.Int("flits", 16, "message length in flits")
		load    = flag.Float64("load", 0.02, "offered load (flits/cycle per processor)")
		warmup  = flag.Int("warmup", 10000, "warmup cycles")
		measure = flag.Int("measure", 50000, "measurement cycles")
		seed    = flag.Uint64("seed", 1, "random seed")
		policy  = flag.String("policy", "pairqueue", "up-link policy: pairqueue or randomfixed")
		hist    = flag.Bool("hist", false, "collect a latency histogram and report percentiles")
		prec    = flag.Float64("precision", 0, "stop early once the latency CI is within this relative half-width (0 = fixed window)")
		reps    = flag.Int("replicas", 1, "independent replicas to run and pool")
		wlJSON  = flag.String("workload", "", `workload spec as JSON, e.g. '{"process":"mmpp","on_frac":0.25,"burst_cycles":200}' (empty = steady uniform Poisson)`)
	)
	flag.Parse()

	var net topology.Network
	var err error
	if *cube > 0 {
		net, err = topology.NewHypercube(*cube)
	} else {
		net, err = topology.NewFatTree(*n)
	}
	if err != nil {
		log.Fatal(err)
	}
	var pol sim.UpLinkPolicy
	switch *policy {
	case "pairqueue":
		pol = sim.PairQueue
	case "randomfixed":
		pol = sim.RandomFixed
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	cfg := sim.Config{
		Net:              net,
		MsgFlits:         *flits,
		Seed:             *seed,
		WarmupCycles:     *warmup,
		MeasureCycles:    *measure,
		Policy:           pol,
		LatencyHistogram: *hist,
	}.FlitLoad(*load)
	if *wlJSON != "" {
		var wl workload.Spec
		if err := sweep.DecodeStrict([]byte(*wlJSON), &wl); err != nil {
			log.Fatalf("decoding -workload: %v", err)
		}
		if err := wl.Validate(); err != nil {
			log.Fatal(err)
		}
		cfg.Workload = &wl
	}
	var opts []sim.Option
	if *prec > 0 {
		opts = append(opts, sim.WithTermination(sim.Termination{RelHalfWidth: *prec}))
	}
	if *reps > 1 {
		opts = append(opts, sim.WithReplicas(*reps))
	}
	res, err := sim.Run(context.Background(), cfg, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.String())
	fmt.Printf("  latency: mean=%.3f ±%.3f (95%% CI), min=%.1f, max=%.1f cycles\n",
		res.LatencyMean, res.LatencyCI95, res.LatencyMin, res.LatencyMax)
	if res.EarlyStopped || res.Replicas > 1 {
		fmt.Printf("  effort: %d replicas, %d measured cycles, achieved precision %.4f\n",
			res.Replicas, res.MeasuredCycles, res.Precision)
	}
	if *hist {
		fmt.Printf("  percentiles: p50=%.1f p95=%.1f p99=%.1f cycles\n",
			res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	fmt.Printf("  injection: wait=%.3f, service=%.3f cycles (model's W(0,1), x(0,1))\n",
		res.WaitInjMean, res.ServiceInjMean)
	fmt.Printf("  throughput: %.5f delivered vs %.5f offered flits/cycle/PE\n",
		res.ThroughputFlits, res.OfferedFlits)
	fmt.Printf("  tracked messages: %d arrived, %d completed; mean source queue %.3f\n",
		res.TrackedInjected, res.TrackedCompleted, res.MeanSourceQueue)
	fmt.Println("  mean busy fraction by channel kind:")
	for kind, busy := range res.BusyByKind(net) {
		fmt.Printf("    %-5v %.4f\n", kind, busy)
	}
}
