// Command trace records, replays and summarises deterministic arrival
// traces (internal/workload's NDJSON format).
//
// Usage:
//
//	trace record -o burst.ndjson -n 512 -flits 16 -load 0.1 \
//	    -workload '{"process":"mmpp","on_frac":0.25,"burst_cycles":200}'
//	trace replay -trace burst.ndjson
//	trace stats  -trace burst.ndjson -top 8
//
// record runs one simulation with a recorder attached and writes every
// accepted arrival (source, pre-drawn destination, continuous arrival
// cycle) plus a header holding the full recording recipe — topology,
// message length, windows, seed, policy. Recording does not perturb the
// run: the recorded Result is bit-identical to an unrecorded one.
//
// replay rebuilds the configuration from the trace header and feeds the
// recorded arrivals back to the engine; the replayed Result is
// bit-identical to the recording run's. -result-out (on both record and
// replay) writes the Result in a canonical text form, so bit-identity is
// a file diff.
//
// stats prints summary statistics as JSON: event count, span, mean rate,
// pooled interarrival SCV (≈1 Poisson, >1 bursty), and the most-hit
// destinations.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/bits"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	cliutil.Setup("trace")
	if len(os.Args) < 2 {
		log.Fatal("usage: trace record|replay|stats [flags] (run 'trace <cmd> -h' for flags)")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want record, replay or stats)", os.Args[1])
	}
}

// bench is the machine-readable timing line -json emits.
type bench struct {
	Mode         string  `json:"mode"`
	Events       int     `json:"events"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func writeResult(path string, res *sim.Result) {
	if path == "" {
		return
	}
	// Canonical text form: %+v spells NaN literally, so bit-identity
	// between a recording and its replay is a plain file diff.
	if err := os.WriteFile(path, []byte(fmt.Sprintf("%+v\n", *res)), 0o644); err != nil {
		log.Fatal(err)
	}
}

func emit(jsonOut bool, b bench, res *sim.Result) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(b); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("%s: %d events in %.2fs (%.0f events/sec)\n", b.Mode, b.Events, b.ElapsedSec, b.EventsPerSec)
	fmt.Println(res.String())
}

func record(args []string) {
	fs := flag.NewFlagSet("trace record", flag.ExitOnError)
	var (
		out     = fs.String("o", "", "output trace path (required)")
		n       = fs.Int("n", 64, "number of processors (power of four)")
		cube    = fs.Int("cube", 0, "record on a binary hypercube of this many dimensions instead")
		flits   = fs.Int("flits", 16, "message length in flits")
		load    = fs.Float64("load", 0.05, "offered load (flits/cycle per processor)")
		warmup  = fs.Int("warmup", 4000, "warmup cycles")
		measure = fs.Int("measure", 20000, "measurement cycles")
		seed    = fs.Uint64("seed", 1, "random seed")
		policy  = fs.String("policy", "pairqueue", "up-link policy: pairqueue or randomfixed")
		wlJSON  = fs.String("workload", "", "workload spec as JSON (empty = steady uniform Poisson)")
		resOut  = fs.String("result-out", "", "write the recording run's Result to this file")
		jsonOut = fs.Bool("json", false, "print a machine-readable timing line instead of the Result")
	)
	fs.Parse(args)
	if *out == "" {
		log.Fatal("trace record: -o is required")
	}

	var net topology.Network
	var family string
	var err error
	if *cube > 0 {
		net, err = topology.NewHypercube(*cube)
		family = "hypercube"
	} else {
		net, err = topology.NewFatTree(*n)
		family = "fattree"
	}
	if err != nil {
		log.Fatal(err)
	}
	pol, err := sim.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.Config{
		Net:           net,
		MsgFlits:      *flits,
		Seed:          *seed,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		Policy:        pol,
	}.FlitLoad(*load)
	if *wlJSON != "" {
		var wl workload.Spec
		if err := sweep.DecodeStrict([]byte(*wlJSON), &wl); err != nil {
			log.Fatalf("decoding -workload: %v", err)
		}
		cfg.Workload = &wl
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	tr := &workload.Trace{Header: workload.TraceHeader{
		Family:   family,
		Size:     net.NumProcessors(),
		MsgFlits: cfg.MsgFlits,
		Lambda0:  cfg.Lambda0,
		Warmup:   cfg.WarmupCycles,
		Measure:  cfg.MeasureCycles,
		Seed:     cfg.Seed,
		Policy:   cfg.Policy.String(),
		Workload: cfg.Workload.Canonical(),
	}}
	cfg.Recorder = func(src, dst int, cycle float64) {
		tr.Events = append(tr.Events, workload.TraceEvent{
			Src: src, Dst: dst, Cycle: cycle, MsgFlits: cfg.MsgFlits,
		})
	}

	start := time.Now()
	res, err := sim.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.WriteTrace(f, tr); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	writeResult(*resOut, res)
	emit(*jsonOut, bench{
		Mode: "record", Events: len(tr.Events),
		ElapsedSec: elapsed, EventsPerSec: float64(len(tr.Events)) / elapsed,
	}, res)
}

// netFromHeader rebuilds the recording run's network.
func netFromHeader(h workload.TraceHeader) (topology.Network, error) {
	switch h.Family {
	case "fattree", "bft":
		return topology.NewFatTree(h.Size)
	case "hypercube":
		if h.Size < 2 || bits.OnesCount(uint(h.Size)) != 1 {
			return nil, fmt.Errorf("trace: hypercube size %d is not a power of two", h.Size)
		}
		return topology.NewHypercube(bits.TrailingZeros(uint(h.Size)))
	default:
		return nil, fmt.Errorf("trace: unknown family %q in header", h.Family)
	}
}

func loadTrace(path string) *workload.Trace {
	if path == "" {
		log.Fatal("-trace is required")
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.ReadTrace(f)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func replay(args []string) {
	fs := flag.NewFlagSet("trace replay", flag.ExitOnError)
	var (
		path    = fs.String("trace", "", "trace file to replay (required)")
		resOut  = fs.String("result-out", "", "write the replayed Result to this file")
		jsonOut = fs.Bool("json", false, "print a machine-readable timing line instead of the Result")
	)
	fs.Parse(args)
	tr := loadTrace(*path)
	h := tr.Header

	net, err := netFromHeader(h)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := sim.ParsePolicy(h.Policy)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.Config{
		Net:           net,
		MsgFlits:      h.MsgFlits,
		Lambda0:       h.Lambda0,
		Seed:          h.Seed,
		WarmupCycles:  h.Warmup,
		MeasureCycles: h.Measure,
		DrainLimit:    h.DrainLimit,
		Policy:        pol,
		Trace:         tr,
	}

	start := time.Now()
	res, err := sim.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	writeResult(*resOut, res)
	emit(*jsonOut, bench{
		Mode: "replay", Events: len(tr.Events),
		ElapsedSec: elapsed, EventsPerSec: float64(len(tr.Events)) / elapsed,
	}, res)
}

func stats(args []string) {
	fs := flag.NewFlagSet("trace stats", flag.ExitOnError)
	var (
		path = fs.String("trace", "", "trace file to summarise (required)")
		top  = fs.Int("top", 8, "number of top destinations to list")
	)
	fs.Parse(args)
	tr := loadTrace(*path)
	out := struct {
		Header workload.TraceHeader `json:"header"`
		Stats  workload.TraceStats  `json:"stats"`
	}{tr.Header, tr.Stats(*top)}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}
