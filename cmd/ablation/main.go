// Command ablation regenerates experiments A1–A3: the paper's model with
// each novel ingredient removed (blocking correction, multi-server
// up-links, the published 2λ rate correction) against one simulated
// reference curve, and — with -sim — the simulator-side policy comparison
// (shared pair queue vs randomly pinned links). Both experiments compile
// to declarative sweep specs (printable with -dumpspec, runnable with
// cmd/sweep) executed through the Evaluator backends.
//
// Usage:
//
//	ablation [-n 1024] [-flits 32] [-points 6] [-full] [-sim] [-csv]
//	         [-seed 1] [-timeout 0] [-dumpspec]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/sweep"
)

func main() {
	cliutil.Setup("ablation")
	var (
		n       = flag.Int("n", 1024, "number of processors (power of four)")
		flits   = flag.Int("flits", 32, "message length in flits")
		points  = flag.Int("points", 6, "loads per curve")
		full    = flag.Bool("full", false, "use the report-quality simulation budget")
		simCmp  = flag.Bool("sim", false, "run the A3 simulator policy comparison instead")
		csv     = flag.Bool("csv", false, "emit CSV")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
		dump    = flag.Bool("dumpspec", false, "print the sweep spec for these flags as JSON and exit")
	)
	flag.Parse()
	b := cliutil.Budget(*full, *seed)

	specOf := exp.AblationSpec
	if *simCmp {
		specOf = exp.PolicyComparisonSpec
	}
	if *dump {
		spec, err := specOf(*n, *flits, *points, b)
		if err != nil {
			log.Fatal(err)
		}
		if err := cliutil.DumpJSON(spec); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()
	runner := sweep.NewRunner()

	if *simCmp {
		rows, err := exp.PolicyComparisonRun(ctx, *n, *flits, *points, b, runner)
		if err != nil {
			log.Fatal(err)
		}
		if !*csv {
			fmt.Println("A3: simulator up-link policy (pair queue ~ M/G/2, random-fixed ~ 2x M/G/1)")
		}
		cliutil.Output(exp.PolicyTable(rows), *csv)
		return
	}

	res, err := exp.AblationsRun(ctx, *n, *flits, *points, b, runner)
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		cliutil.Output(res.Table(), true)
		return
	}
	fmt.Printf("A1/A2: model ablations, N=%d, %d-flit messages (latencies in cycles)\n",
		res.NumProc, res.MsgFlits)
	cliutil.Output(res.Table(), false)
	fmt.Println("\n+Inf entries mean the variant predicts saturation below that load.")
}
