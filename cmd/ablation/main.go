// Command ablation regenerates experiments A1–A3: the paper's model with
// each novel ingredient removed (blocking correction, multi-server
// up-links, the published 2λ rate correction) against one simulated
// reference curve, and — with -sim — the simulator-side policy comparison
// (shared pair queue vs randomly pinned links).
//
// Usage:
//
//	ablation [-n 1024] [-flits 32] [-points 6] [-full] [-sim] [-csv] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablation: ")
	var (
		n      = flag.Int("n", 1024, "number of processors (power of four)")
		flits  = flag.Int("flits", 32, "message length in flits")
		points = flag.Int("points", 6, "loads per curve")
		full   = flag.Bool("full", false, "use the report-quality simulation budget")
		simCmp = flag.Bool("sim", false, "run the A3 simulator policy comparison instead")
		csv    = flag.Bool("csv", false, "emit CSV")
		seed   = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	b := cliutil.Budget(*full, *seed)

	if *simCmp {
		rows, err := exp.PolicyComparison(*n, *flits, *points, b)
		if err != nil {
			log.Fatal(err)
		}
		tbl := exp.PolicyTable(rows)
		if *csv {
			fmt.Fprint(os.Stdout, tbl.CSV())
			return
		}
		fmt.Println("A3: simulator up-link policy (pair queue ~ M/G/2, random-fixed ~ 2x M/G/1)")
		fmt.Print(tbl.String())
		return
	}

	res, err := exp.Ablations(*n, *flits, *points, b)
	if err != nil {
		log.Fatal(err)
	}
	tbl := res.Table()
	if *csv {
		fmt.Fprint(os.Stdout, tbl.CSV())
		return
	}
	fmt.Printf("A1/A2: model ablations, N=%d, %d-flit messages (latencies in cycles)\n",
		res.NumProc, res.MsgFlits)
	fmt.Print(tbl.String())
	fmt.Println("\n+Inf entries mean the variant predicts saturation below that load.")
}
