// Command sweep runs declarative scenario sweeps: a JSON spec (or a
// built-in named spec) describing a grid of topology × message length ×
// policy × load scenarios is expanded, executed on a bounded worker pool,
// and rendered as a table or JSON. Repeating -spec runs several sweeps in
// one process against a shared result cache, so overlapping grids report
// cache hits instead of recomputing cells.
//
// Usage:
//
//	sweep -spec builtin:figure3                  # a paper grid by name
//	sweep -spec my-grid.json -json               # a custom grid, JSON out
//	sweep -spec builtin:figure3 -spec builtin:figure3   # 2nd run: all cached
//	sweep -list                                  # show built-in specs
//	sweep -dump builtin:table2                   # print a spec as JSON
//
// Progress streams to stderr; results go to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/sweep"
)

// specList collects repeated -spec flags.
type specList []string

func (s *specList) String() string { return strings.Join(*s, ",") }

func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var specs specList
	flag.Var(&specs, "spec", "spec file path or builtin:<name>; repeat to run several sweeps against one cache")
	var (
		list    = flag.Bool("list", false, "list built-in specs and exit")
		dump    = flag.String("dump", "", "print the named spec (file path or builtin:<name>) as JSON and exit")
		jsonOut = flag.Bool("json", false, "emit JSON instead of tables")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		full    = flag.Bool("full", false, "override spec budgets with the report-quality budget")
		seed    = flag.Uint64("seed", 0, "override spec seeds (0 keeps each spec's own)")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	if *list {
		for _, name := range sweep.Builtins() {
			s, _ := sweep.Builtin(name)
			fmt.Printf("%-16s %s\n", name, s.Description)
		}
		return
	}
	if *dump != "" {
		spec, err := loadSpec(*dump)
		if err != nil {
			log.Fatal(err)
		}
		out, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	if len(specs) == 0 {
		log.Fatal("no -spec given (try -spec builtin:figure3, or -list)")
	}

	runner := &sweep.Runner{Workers: *workers, Cache: sweep.NewCache()}
	if !*quiet {
		runner.Progress = func(ev sweep.Event) {
			tag := ""
			if ev.Cached {
				tag = " [cached]"
			}
			fmt.Fprintf(os.Stderr, "sweep: %d/%d %s load=%.6g%s\n",
				ev.Done, ev.Total, ev.Scenario.CurveKey(), ev.Scenario.Load.Value, tag)
		}
	}

	var results []*sweep.Result
	for _, ref := range specs {
		spec, err := loadSpec(ref)
		if err != nil {
			log.Fatal(err)
		}
		if *full {
			spec.Budget.Warmup = sweep.Full.Warmup
			spec.Budget.Measure = sweep.Full.Measure
		}
		if *seed != 0 {
			spec.Budget.Seed = *seed
		}
		res, err := runner.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "sweep: %s done: %d computed, %d cache hits\n",
				displayName(spec), res.CacheMisses, res.CacheHits)
		}
	}

	if *jsonOut {
		out, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(res.Summary())
		fmt.Print(res.Table().String())
	}
}

// loadSpec resolves a -spec argument: "builtin:<name>" or a JSON file
// path.
func loadSpec(ref string) (sweep.Spec, error) {
	if name, ok := strings.CutPrefix(ref, "builtin:"); ok {
		return sweep.Builtin(name)
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		return sweep.Spec{}, err
	}
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		return sweep.Spec{}, fmt.Errorf("%s: %w", ref, err)
	}
	return spec, nil
}

func displayName(s sweep.Spec) string {
	if s.Name != "" {
		return s.Name
	}
	return "sweep"
}
