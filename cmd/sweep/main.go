// Command sweep runs declarative scenario sweeps: a JSON spec (or a
// built-in named spec) describing a grid of topology × message length ×
// policy × variant × load scenarios is expanded, executed on a bounded
// worker pool through the Evaluator backends, and rendered as a table or
// JSON. Repeating -spec runs several sweeps in one process against a
// shared result cache, so overlapping grids report cache hits instead of
// recomputing cells.
//
// Usage:
//
//	sweep -spec builtin:figure3                  # a paper grid by name
//	sweep -spec my-grid.json -json               # a custom grid, JSON out
//	sweep -spec builtin:figure3 -stream          # NDJSON, one cell per line
//	sweep -spec builtin:figure3 -timeout 30s     # bounded wall clock
//	sweep -spec builtin:figure3 -spec builtin:figure3   # 2nd run: all cached
//	sweep -list                                  # show built-in specs
//	sweep -dump builtin:table2                   # print a spec as JSON
//	sweep -spec builtin:figure3 -addr :8713      # evaluate on a sweepd server
//	sweep -spec builtin:figure3 -addr :8713 -batch 32   # batched transport
//	sweep -spec builtin:figure3 -shards :8713,:8714,:8715   # dispatch ranges
//	sweep -spec builtin:figure3 -cache-dir d     # persistent result store
//	sweep -spec builtin:figure3 -backend model,bounds   # add worst-case bounds
//	sweep -spec builtin:figure3 -trace-out t.ndjson   # NDJSON span trace
//	sweep -spec s.json -calib-out map.json       # mine sim cells into a calibration map
//
// Progress streams to stderr; results go to stdout. With -stream each
// cell is emitted as one JSON line the moment it completes (completion
// order, not grid order); without it, results render after each sweep
// finishes. -timeout wires a deadline into the sweep's context — the
// simulator aborts mid-cycle-loop when it expires.
//
// With -addr the grid is still expanded (and cached) locally, but every
// cell is evaluated by the named sweepd server(s) — comma-separate
// addresses to shard round-robin across a fleet; adding -batch switches
// to the batched transport, coalescing concurrent cells into one
// request per flush window. With -shards the distributed scheduler
// takes over instead: the grid is partitioned into contiguous ranges,
// each range dispatched whole to a shard (specs cross the wire, cells
// do not), failed or slow shards' remainders are stolen by the
// survivors, and the merged rows come back in grid order (see
// docs/dispatch.md; -batch then bounds the range size). With -cache-dir
// the result cache is a persistent store: a rerun in a fresh process
// serves every previously computed cell from disk.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/calib"
	"repro/internal/cliutil"
	"repro/internal/dispatch"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/sweep"
)

// executor is what both execution engines — the local/remote-backed
// sweep.Runner and the distributed dispatch.Dispatcher — offer the CLI.
type executor interface {
	Run(ctx context.Context, spec sweep.Spec) (*sweep.Result, error)
	Stream(ctx context.Context, spec sweep.Spec) <-chan sweep.PointResult
}

// specList collects repeated -spec flags.
type specList []string

func (s *specList) String() string { return strings.Join(*s, ",") }

func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	cliutil.Setup("sweep")
	var specs specList
	flag.Var(&specs, "spec", "spec file path or builtin:<name>; repeat to run several sweeps against one cache")
	var (
		list     = flag.Bool("list", false, "list built-in specs and exit")
		dump     = flag.String("dump", "", "print the named spec (file path or builtin:<name>) as JSON and exit")
		jsonOut  = flag.Bool("json", false, "emit JSON instead of tables")
		stream   = flag.Bool("stream", false, "emit NDJSON: one JSON line per cell as it completes")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		full     = flag.Bool("full", false, "override spec budgets with the report-quality budget")
		seed     = flag.Uint64("seed", 0, "override spec seeds (0 keeps each spec's own)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		backend  = flag.String("backend", "", "override spec backends: comma-separated subset of model,sim,bounds (empty = spec's own)")
		benchOut = flag.String("bench-out", "", "write a points/sec benchmark summary JSON to this file")
		addr     = flag.String("addr", "", "evaluate scenarios on these sweepd server(s), comma-separated (empty = in-process)")
		shards   = flag.String("shards", "", "dispatch grid ranges across these sweepd shard(s), comma-separated (distributed scheduler)")
		batch    = flag.Int("batch", 0, "with -addr: coalesce cells into batches of this size; with -shards: cells per dispatched range (0 = auto)")
		cacheDir = flag.String("cache-dir", "", "persist the result cache to this directory (empty = in-memory)")
		traceOut = flag.String("trace-out", "", "write NDJSON span traces to this file (see docs/observability.md)")
		calibOut = flag.String("calib-out", "", "observe sim-carrying cells into a calibration map and save it to this file (see docs/calibration.md)")
	)
	flag.Parse()
	var backends []string
	if *backend != "" {
		var err error
		if backends, err = cliutil.ParseBackends(*backend); err != nil {
			log.Fatal(err)
		}
	}
	if *addr != "" && *shards != "" {
		log.Fatal("-addr and -shards are mutually exclusive: per-cell/batched evaluation vs range dispatch")
	}
	if *batch != 0 && *addr == "" && *shards == "" {
		log.Fatal("-batch needs -addr (batched transport) or -shards (range size); in-process runs do not batch")
	}
	if *workers != 0 && *shards != "" {
		log.Fatal("-workers does not apply with -shards: dispatch concurrency is one range stream per shard (bound range size with -batch)")
	}

	if *list {
		for _, name := range sweep.Builtins() {
			s, _ := sweep.Builtin(name)
			fmt.Printf("%-16s %s\n", name, s.Description)
		}
		return
	}
	if *dump != "" {
		spec, err := loadSpec(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if err := cliutil.DumpJSON(spec); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(specs) == 0 {
		log.Fatal("no -spec given (try -spec builtin:figure3, or -list)")
	}

	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()

	if *traceOut != "" {
		tracer, closeTracer, err := cliutil.OpenTracer(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := closeTracer(); err != nil {
				log.Printf("closing trace: %v", err)
			}
		}()
		ctx = obs.WithTracer(ctx, tracer)
	}

	var cache sweep.CacheStore
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("closing store: %v", err)
			}
		}()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "sweep: store: %d cell(s) recovered from %s\n",
				st.Recovered(), *cacheDir)
		}
		cache = st
	} else {
		cache = sweep.NewCache()
	}

	// With -calib-out every sim-carrying cell the run touches (fresh or
	// cached) is observed into a calibration map, loaded from the target
	// file so repeated runs accumulate, and saved back on exit.
	var calibMap *calib.Map
	if *calibOut != "" {
		var err error
		if calibMap, err = calib.LoadMap(*calibOut); err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := calibMap.Save(*calibOut); err != nil {
				log.Printf("saving calibration map: %v", err)
			} else if !*quiet {
				fmt.Fprintf(os.Stderr, "sweep: calibration: %d pair(s) saved to %s\n",
					calibMap.Pairs(), *calibOut)
			}
		}()
	}

	var exec executor
	var disp *dispatch.Dispatcher
	if *shards != "" {
		addrs, err := cliutil.ParseStrings(*shards)
		if err != nil {
			log.Fatal(err)
		}
		dopts := []dispatch.Option{dispatch.WithBatch(*batch), dispatch.WithCache(cache)}
		if calibMap != nil {
			dopts = append(dopts, dispatch.WithCalibration(calibMap))
		}
		disp, err = dispatch.New(addrs, dopts...)
		if err != nil {
			log.Fatal(err)
		}
		exec = disp
	} else {
		opts := []sweep.Option{sweep.WithWorkers(*workers), sweep.WithCache(cache)}
		if calibMap != nil {
			opts = append(opts, sweep.WithCalibration(calibMap))
		}
		if *addr != "" {
			addrs, err := cliutil.ParseStrings(*addr)
			if err != nil {
				log.Fatal(err)
			}
			var be eval.Evaluator
			if *batch > 0 {
				be, err = eval.NewBatchBackend(addrs, eval.WithBatchSize(*batch))
			} else {
				be, err = eval.NewRemoteBackend(addrs)
			}
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, sweep.WithBackends(be))
		}
		runner := sweep.NewRunner(opts...)
		if !*quiet && !*stream {
			runner.Progress = func(ev sweep.Event) {
				tag := ""
				if ev.Cached {
					tag = " [cached]"
				}
				fmt.Fprintf(os.Stderr, "sweep: %d/%d %s load=%.6g%s\n",
					ev.Done, ev.Total, ev.Scenario.CurveKey(), ev.Scenario.Load.Value, tag)
			}
		}
		exec = runner
	}

	start := time.Now()
	var results []*sweep.Result
	computed, cells := 0, 0
	for _, ref := range specs {
		spec, err := loadSpec(ref)
		if err != nil {
			log.Fatal(err)
		}
		if len(backends) > 0 {
			// -backend overrides the spec wholesale; with_sim follows the
			// list so the two spellings stay in agreement (Spec.Validate
			// rejects a with_sim=true spec whose backends omit "sim").
			spec.Backends = backends
			spec.WithSim = false
			for _, b := range backends {
				if b == sweep.BackendSim {
					spec.WithSim = true
				}
			}
		}
		if *full {
			spec.Budget.Warmup = sweep.Full.Warmup
			spec.Budget.Measure = sweep.Full.Measure
		}
		if *seed != 0 {
			spec.Budget.Seed = *seed
		}
		if *stream {
			n, fresh, err := streamSpec(ctx, exec, spec)
			cells += n
			computed += fresh
			if err != nil {
				log.Fatal(err)
			}
			continue
		}
		res, err := exec.Run(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		cells += len(res.Rows)
		computed += res.CacheMisses
		if !*quiet {
			fmt.Fprintf(os.Stderr, "sweep: %s done: %d computed, %d cache hits\n",
				displayName(spec), res.CacheMisses, res.CacheHits)
		}
	}
	if disp != nil && !*quiet {
		st := disp.Stats()
		fmt.Fprintf(os.Stderr,
			"sweep: dispatch: %d cell(s) over %d range(s), %d cached, %d requeue(s), %d shard failure(s), %d ejected\n",
			st.Cells, st.Batches, st.CacheHits, st.Requeues, st.ShardFailures, st.EjectedShards)
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, specs, cells, computed, time.Since(start)); err != nil {
			log.Fatal(err)
		}
	}
	if *stream {
		return
	}

	if *jsonOut {
		out, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(res.Summary())
		fmt.Print(res.Table().String())
	}
}

// streamSpec runs one spec through the executor's Stream, printing each
// cell as a JSON line the moment it completes (grid order under the
// dispatcher, completion order in-process). It returns the number of
// emitted cells and how many of those were freshly computed (not cache
// hits).
func streamSpec(ctx context.Context, exec executor, spec sweep.Spec) (cells, fresh int, err error) {
	enc := json.NewEncoder(os.Stdout)
	for pr := range exec.Stream(ctx, spec) {
		if pr.Err != nil {
			return cells, fresh, pr.Err
		}
		if err := enc.Encode(pr.Row); err != nil {
			return cells, fresh, err
		}
		cells++
		if !pr.Row.Cached {
			fresh++
		}
	}
	return cells, fresh, ctx.Err()
}

// writeBench records a small throughput summary so CI can track the
// sweep engine's performance trajectory across PRs.
func writeBench(path string, specs specList, cells, computed int, elapsed time.Duration) error {
	summary := struct {
		Specs        []string `json:"specs"`
		Cells        int      `json:"cells"`
		Computed     int      `json:"computed"`
		ElapsedMS    int64    `json:"elapsed_ms"`
		PointsPerSec float64  `json:"points_per_sec"`
	}{
		Specs:     specs,
		Cells:     cells,
		Computed:  computed,
		ElapsedMS: elapsed.Milliseconds(),
	}
	if s := elapsed.Seconds(); s > 0 {
		summary.PointsPerSec = float64(computed) / s
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadSpec resolves a -spec argument: "builtin:<name>" or a JSON file
// path.
func loadSpec(ref string) (sweep.Spec, error) {
	if name, ok := strings.CutPrefix(ref, "builtin:"); ok {
		return sweep.Builtin(name)
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		return sweep.Spec{}, err
	}
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		return sweep.Spec{}, fmt.Errorf("%s: %w", ref, err)
	}
	return spec, nil
}

func displayName(s sweep.Spec) string {
	if s.Name != "" {
		return s.Name
	}
	return "sweep"
}
