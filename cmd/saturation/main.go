// Command saturation regenerates experiment T2: maximum throughput. For
// every configuration it reports the model's Eq. 26 saturation load and a
// simulated bracket (highest sustained probe, lowest saturated probe).
//
// Usage:
//
//	saturation [-sizes 64,256,1024] [-flits 16,32,64] [-full] [-csv] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("saturation: ")
	var (
		sizes = flag.String("sizes", "64,256,1024", "machine sizes (powers of four)")
		flits = flag.String("flits", "16,32,64", "message lengths in flits")
		full  = flag.Bool("full", false, "use the report-quality simulation budget")
		csv   = flag.Bool("csv", false, "emit CSV")
		seed  = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	ns, err := cliutil.ParseInts(*sizes)
	if err != nil {
		log.Fatal(err)
	}
	ss, err := cliutil.ParseInts(*flits)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := exp.SaturationTable(ns, ss, cliutil.Budget(*full, *seed))
	if err != nil {
		log.Fatal(err)
	}
	tbl := exp.SaturationTableRender(rows)
	if *csv {
		fmt.Fprint(os.Stdout, tbl.CSV())
		return
	}
	fmt.Print(tbl.String())
}
