// Command saturation regenerates experiment T2: maximum throughput. For
// every configuration it reports the model's Eq. 26 saturation load and a
// simulated bracket (highest sustained probe, lowest saturated probe).
// The experiment compiles to a declarative sweep spec (printable with
// -dumpspec, runnable with cmd/sweep) executed through the Evaluator
// backends.
//
// Usage:
//
//	saturation [-sizes 64,256,1024] [-flits 16,32,64] [-full] [-csv]
//	           [-seed 1] [-timeout 0] [-dumpspec]
package main

import (
	"flag"
	"log"

	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/sweep"
)

func main() {
	cliutil.Setup("saturation")
	var (
		sizes   = flag.String("sizes", "64,256,1024", "machine sizes (powers of four)")
		flits   = flag.String("flits", "16,32,64", "message lengths in flits")
		full    = flag.Bool("full", false, "use the report-quality simulation budget")
		csv     = flag.Bool("csv", false, "emit CSV")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
		dump    = flag.Bool("dumpspec", false, "print the sweep spec for these flags as JSON and exit")
	)
	flag.Parse()

	ns, err := cliutil.ParseInts(*sizes)
	if err != nil {
		log.Fatal(err)
	}
	ss, err := cliutil.ParseInts(*flits)
	if err != nil {
		log.Fatal(err)
	}
	b := cliutil.Budget(*full, *seed)
	if *dump {
		if err := cliutil.DumpJSON(exp.SaturationSpec(ns, ss, b)); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()
	rows, err := exp.SaturationTableRun(ctx, ns, ss, b,
		sweep.NewRunner())
	if err != nil {
		log.Fatal(err)
	}
	cliutil.Output(exp.SaturationTableRender(rows), *csv)
}
