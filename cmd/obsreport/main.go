// Command obsreport analyzes NDJSON span traces written by -trace-out
// (cmd/sweep, cmd/plan, sweepd): it reassembles the span tree across
// however many files the fleet produced — coordinator plus every
// shard — and reports per-layer time, the critical path, cache hit
// ratio, planner decision counts and per-shard skew. With -check it
// validates well-formedness instead (every span parented, one root per
// trace) and exits non-zero on a torn tree, which is how the obs smoke
// gates cross-shard stitching. With -metrics it validates a /metrics
// scrape as parseable Prometheus text. See docs/observability.md.
//
// Usage:
//
//	obsreport trace.ndjson                  # human-readable report
//	obsreport coord.ndjson shard*.ndjson    # stitched multi-file report
//	obsreport -check coord.ndjson shard*.ndjson   # well-formedness gate
//	obsreport -json trace.ndjson            # the report as JSON
//	obsreport -metrics scrape.txt           # validate a /metrics scrape
//	cat trace.ndjson | obsreport -          # read from stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/internal/obs"
)

func main() {
	cliutil.Setup("obsreport")
	var (
		check   = flag.Bool("check", false, "validate trace well-formedness (stitched, single-rooted) and exit non-zero on failure")
		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of text")
		metrics = flag.String("metrics", "", "validate this /metrics scrape as Prometheus text and exit")
	)
	flag.Parse()

	if *metrics != "" {
		samples, err := parseMetricsFile(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics ok: %d sample(s)\n", len(samples))
		return
	}

	paths := flag.Args()
	if len(paths) == 0 {
		log.Fatal("no trace file given (pass one or more NDJSON files, or - for stdin)")
	}
	var events []obs.Event
	for _, path := range paths {
		evs, err := readTrace(path)
		if err != nil {
			log.Fatal(err)
		}
		events = append(events, evs...)
	}

	if *check {
		if err := obs.CheckForest(obs.BuildForest(events)); err != nil {
			log.Fatal(err)
		}
		f := obs.BuildForest(events)
		fmt.Printf("trace ok: %d trace(s), %d span(s), %d event(s), all stitched\n",
			len(f.Traces), len(f.Nodes), len(events))
		return
	}

	report := obs.Analyze(events)
	if *jsonOut {
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	report.Format(os.Stdout)
}

// readTrace reads one trace file's events; "-" reads stdin.
func readTrace(path string) ([]obs.Event, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	evs, err := obs.ReadEvents(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}

// parseMetricsFile validates a Prometheus text-format scrape.
func parseMetricsFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples, err := obs.ParseMetrics(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return samples, nil
}
