// Capacity planning with the model-guided planner: given a latency SLO,
// find which machines sustain the most load, what they cost, and have
// the simulator certify the winners — the kind of design question the
// paper's model answers in milliseconds where a simulation campaign
// takes hours. The planner prunes the design space on a coarse analytic
// grid, bisects each survivor's load axis to the saturation knee, keeps
// the Pareto frontier over (cost, latency, sustainable load), and runs
// the flit-level simulator only on the frontier.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec, err := repro.PlanBuiltin("bft-capacity")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s\n%s\n\n", spec.Name, spec.Description)
	res, err := repro.Plan(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())
	fmt.Println()
	fmt.Print(res.Table().String())
	fmt.Println("\nlarger machines give up load earlier: top-level up-link pairs concentrate")
	fmt.Println("contention, exactly the effect the paper's M/G/2 channels capture — and the")
	fmt.Println("planner finds each knee with ~25 model probes instead of a full sweep grid.")
}
