// Capacity planning with the analytical model: given a latency budget
// (e.g. "mean latency under 2× the unloaded value"), find the highest
// sustainable load for each machine size and message length — the kind of
// question the paper's model answers in microseconds where a simulation
// campaign takes hours.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/solve"
)

func main() {
	log.SetFlags(0)
	const latencyFactor = 2.0 // budget: L <= factor × unloaded latency

	fmt.Printf("max load (flits/cycle/PE) with mean latency <= %.1fx unloaded\n\n", latencyFactor)
	fmt.Printf("%-8s", "N \\ s")
	msgSizes := []float64{16, 32, 64}
	for _, s := range msgSizes {
		fmt.Printf("  %8.0f", s)
	}
	fmt.Println()

	for _, n := range []int{64, 256, 1024} {
		fmt.Printf("%-8d", n)
		for _, s := range msgSizes {
			model, err := repro.NewFatTreeModel(n, s)
			if err != nil {
				log.Fatal(err)
			}
			budget := (s + model.AvgDist() - 1) * latencyFactor
			sat, err := model.SaturationLoad()
			if err != nil {
				log.Fatal(err)
			}
			// The latency curve is monotone in load, so bisect for the
			// load whose predicted latency hits the budget.
			f := func(load float64) float64 {
				lat, err := model.Latency(load / s)
				if err != nil {
					return budget // saturated: over budget for sure
				}
				return lat.Total - budget
			}
			load, err := solve.Bisect(f, 0, sat, 1e-9, 200)
			if err != nil {
				// Budget not reached below saturation: saturation rules.
				load = sat
			}
			fmt.Printf("  %8.4f", load)
		}
		fmt.Println()
	}
	fmt.Println("\nlarger machines give up load earlier: top-level up-link pairs concentrate")
	fmt.Println("contention, exactly the effect the paper's M/G/2 channels capture.")
}
