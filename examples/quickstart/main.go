// Quickstart: predict butterfly fat-tree latency with the analytical
// model, verify the prediction with the flit-level simulator, and find
// the saturation throughput — the complete workflow of the paper in ~50
// lines.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	const (
		numProc  = 256  // 4^4 processors
		msgFlits = 16   // fixed message length (flits)
		load     = 0.03 // offered flits/cycle per processor
	)

	// 1. Analytical model (paper §3, Eq. 12–26).
	model, err := repro.NewFatTreeModel(numProc, msgFlits)
	if err != nil {
		log.Fatal(err)
	}
	lat, err := model.Latency(load / msgFlits) // λ0 in messages/cycle
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: L = %.2f cycles (wait %.2f + service %.2f + D−1 %.2f)\n",
		lat.Total, lat.WaitInj, lat.ServiceInj, lat.AvgDist-1)

	// 2. Saturation throughput (Eq. 26).
	sat, err := model.SaturationLoad()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: saturation at %.4f flits/cycle/PE\n", sat)

	// 3. Flit-level simulation under the paper's assumptions.
	ft, err := repro.NewFatTree(numProc)
	if err != nil {
		log.Fatal(err)
	}
	// The termination option lets the run stop as soon as the estimate
	// is tight enough; MeasureCycles is then just a ceiling.
	res, err := repro.Simulate(context.Background(), repro.SimConfig{
		Net:           ft,
		MsgFlits:      msgFlits,
		Seed:          1,
		WarmupCycles:  5000,
		MeasureCycles: 30000,
	}.FlitLoad(load), repro.WithSimTermination(repro.DefaultSimTermination))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim:   L = %.2f ± %.2f cycles over %d messages\n",
		res.LatencyMean, res.LatencyCI95, res.TrackedCompleted)
	fmt.Printf("agreement: %.1f%% relative error\n",
		100*abs(res.LatencyMean-lat.Total)/lat.Total)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
