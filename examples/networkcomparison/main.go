// Network comparison with the general model: butterfly fat-tree vs binary
// hypercube at equal processor counts. The paper's framework (§2) applies
// to both, so one code path prices latency and saturation for either
// network — the "can also be applied to other networks" claim in action.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/analytic"
)

func main() {
	log.SetFlags(0)
	const msgFlits = 16

	type entry struct {
		name  string
		model analytic.NetworkModel
		sat   func() (float64, error)
	}
	configs := []struct {
		procs int
		dims  int
	}{
		{64, 6}, {256, 8}, {1024, 10},
	}

	fmt.Printf("%-6s  %-24s  %-24s\n", "", "butterfly fat-tree", "binary hypercube")
	fmt.Printf("%-6s  %-10s  %-12s  %-10s  %-12s\n",
		"N", "L(0.3sat)", "sat fl/cyc", "L(0.3sat)", "sat fl/cyc")

	for _, c := range configs {
		ftm, err := repro.NewFatTreeModel(c.procs, msgFlits)
		if err != nil {
			log.Fatal(err)
		}
		hcm, err := repro.NewHypercubeModel(c.dims, msgFlits)
		if err != nil {
			log.Fatal(err)
		}
		row := []string{fmt.Sprintf("%d", c.procs)}
		for _, m := range []analytic.NetworkModel{ftm, hcm} {
			sat, err := satOf(m)
			if err != nil {
				log.Fatal(err)
			}
			lat, err := m.Latency(0.3 * sat / msgFlits)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.2f", lat.Total), fmt.Sprintf("%.4f", sat))
		}
		fmt.Printf("%-6s  %-10s  %-12s  %-10s  %-12s\n", row[0], row[1], row[2], row[3], row[4])
	}

	fmt.Println("\nthe hypercube's per-node bisection stays constant as N grows while the")
	fmt.Println("fat-tree's thins out — but the fat-tree pays for it with 6-port switches")
	fmt.Println("instead of routers whose degree grows with log N (the area-universality")
	fmt.Println("trade-off that motivates fat-trees in the first place).")
}

func satOf(m analytic.NetworkModel) (float64, error) {
	type saturator interface{ SaturationLoad() (float64, error) }
	return m.(saturator).SaturationLoad()
}
