// Example sweep drives the declarative scenario-sweep engine from code:
// it declares a grid, runs it on a bounded worker pool, reruns an
// overlapping grid against the same cache, prints what the cache saved,
// and finally streams a grid point by point. The same spec as JSON lives
// next to this file in spec.json and runs via
// `go run ./cmd/sweep -spec examples/sweep/spec.json`.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A model-only grid: three fat-tree sizes × two message lengths ×
	// six loads, no simulation, so it finishes in milliseconds.
	spec := sweep.Spec{
		Name:       "capacity-scan",
		Topologies: []sweep.TopologySpec{{Family: sweep.FamilyBFT, Sizes: []int{64, 256, 1024}}},
		MsgFlits:   []int{16, 32},
		Loads:      sweep.LoadSpec{Points: 6, MaxFrac: 0.9},
	}

	runner := sweep.NewRunner(sweep.WithCache(sweep.NewCache()))
	res, err := runner.Run(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())
	fmt.Print(res.Table().String())

	// Widen the grid: one more machine size. Every cell of the first run
	// comes back from the cache; only the new topology is computed.
	spec.Topologies[0].Sizes = append(spec.Topologies[0].Sizes, 4096)
	res2, err := runner.Run(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwidened sweep: %d cells computed, %d served from cache\n",
		res2.CacheMisses, res2.CacheHits)

	// Stream the same grid: cells arrive as they complete (here straight
	// from the cache). A cancelled context would close the channel
	// promptly, aborting even in-flight simulations.
	streamed := 0
	for pr := range runner.Stream(ctx, spec) {
		if pr.Err != nil {
			log.Fatal(pr.Err)
		}
		streamed++
	}
	fmt.Printf("streamed %d cells\n", streamed)
}
