// Adaptive up-link policy study: how much does the butterfly fat-tree's
// two-up-link redundancy actually buy? The simulator compares the paper's
// discipline (a shared FCFS queue per pair, which the model captures as
// one M/G/2 channel) against pinning each worm to a randomly chosen link
// (two independent M/G/1 queues), at increasing load.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	const (
		numProc  = 256
		msgFlits = 16
	)
	model, err := repro.NewFatTreeModel(numProc, msgFlits)
	if err != nil {
		log.Fatal(err)
	}
	sat, err := model.SaturationLoad()
	if err != nil {
		log.Fatal(err)
	}
	ft, err := repro.NewFatTree(numProc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("N=%d, s=%d flits; model saturation %.4f flits/cycle/PE\n\n",
		numProc, msgFlits, sat)
	fmt.Printf("%-12s  %-18s  %-18s  %s\n", "load", "pair queue (M/G/2)", "pinned (2x M/G/1)", "penalty")

	for _, frac := range []float64{0.3, 0.5, 0.7, 0.85} {
		load := frac * sat
		run := func(policy repro.UpLinkPolicy) *repro.SimResult {
			res, err := repro.Simulate(context.Background(), repro.SimConfig{
				Net:           ft,
				MsgFlits:      msgFlits,
				Seed:          7,
				WarmupCycles:  5000,
				MeasureCycles: 30000,
				Policy:        policy,
			}.FlitLoad(load))
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		pair := run(repro.PairQueue)
		fixed := run(repro.RandomFixed)
		fmt.Printf("%-12.4f  %8.2f ± %-6.2f  %8.2f ± %-6.2f  +%.1f%%\n",
			load,
			pair.LatencyMean, pair.LatencyCI95,
			fixed.LatencyMean, fixed.LatencyCI95,
			100*(fixed.LatencyMean-pair.LatencyMean)/pair.LatencyMean)
	}
	fmt.Println("\nthe gap widens with load: redundant links only help if a blocked worm")
	fmt.Println("can take whichever frees first — the behaviour the M/G/2 model assumes.")
}
