# CI and local development run the identical commands: .github/workflows/ci.yml
# invokes these targets and nothing else.

GO ?= go

.PHONY: all build test bench lint fmt

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration per benchmark: keeps bench_test.go compiling and running
# without turning CI into a measurement job.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .
