# CI and local development run the identical commands: .github/workflows/ci.yml
# invokes these targets and nothing else.

GO ?= go

.PHONY: all build test bench bench-sim bench-sweep serve-smoke dispatch-smoke plan-smoke workload-smoke obs-smoke bounds-smoke calib-smoke lint staticcheck fmt

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration per benchmark: keeps bench_test.go compiling and running
# without turning CI into a measurement job.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Simulator speed gate: time the pre-rewrite dense engine against the
# event-driven engine with CI-width early stopping on the paper's
# 1024-PE fat-tree at stable loads, verify bit-identity (early stopping
# off) and CI-band agreement, and emit BENCH_sim.json. Fails below 10x.
bench-sim:
	$(GO) run ./cmd/simbench -out BENCH_sim.json
	@cat BENCH_sim.json

# Benchmark smoke for the sweep engine: run a fixed small grid and emit
# BENCH_sweep.json (points/sec) so the performance trajectory is tracked
# across PRs.
bench-sweep:
	$(GO) run ./cmd/sweep -spec builtin:figure3-small -quiet -bench-out BENCH_sweep.json
	@cat BENCH_sweep.json

# Smoke-test the sweep service: start sweepd, run builtin:figure3 both
# in-process and via -addr, diff the results, and emit BENCH_serve.json
# (points/sec over HTTP) for the CI artifact.
serve-smoke:
	bash scripts/serve_smoke.sh
	@cat BENCH_serve.json

# Smoke-test the distributed dispatcher: 3 sweepd shards, figure3
# through cmd/sweep -shards with one shard killed mid-run (diffed
# against in-process), plus a batched-vs-per-cell throughput gate
# emitting BENCH_dispatch.json.
dispatch-smoke:
	bash scripts/dispatch_smoke.sh
	@cat BENCH_dispatch.json

# Smoke-test the capacity planner: 2 sweepd shards, the CI-sized
# builtin plan searched over the fleet, gated on a non-empty
# sim-certified frontier matching the in-process run, emitting
# BENCH_plan.json (candidates/sec, sim evals saved vs a grid).
plan-smoke:
	bash scripts/plan_smoke.sh
	@cat BENCH_plan.json

# Smoke-test the workload subsystem's determinism contract: record a
# 512-PE bursty (MMPP) run to an NDJSON arrival trace, replay it, and
# fail unless the replayed Result is bit-identical to the recording
# run's, emitting BENCH_workload.json (events/sec both ways).
workload-smoke:
	bash scripts/workload_smoke.sh
	@cat BENCH_workload.json

# Smoke-test the worst-case bound backend: run the hard-SLO builtin
# plan (cheapest-hard-sla) over a 2-shard fleet and in-process, diff
# the two, gate on a non-empty fully certified frontier with zero
# bound violations (every certified sim mean under its guarantee), and
# gate bound throughput within 10x of plain model evaluation, emitting
# BENCH_bounds.json.
bounds-smoke:
	bash scripts/bounds_smoke.sh
	@cat BENCH_bounds.json

# Smoke-test fleet-wide observability: a traced dispatched figure3 over
# 2 shards must reassemble into one well-formed span tree (obsreport
# -check), /metrics must parse and carry the engine counters, and
# tracing must cost <= 5% against the untraced run, emitting
# BENCH_obs.json (points/sec with tracing on and off).
obs-smoke:
	bash scripts/obs_smoke.sh
	@cat BENCH_obs.json

# Smoke-test the calibration observatory: mine a with-sim sweep over a
# 2-shard fleet into a calibration map (finite per-region MAPE,
# freshness gate), serve it (/v1/calib, calib_mape gauges, healthz),
# and run the trust-gated builtin plan — the mined region must skip
# its certification sim, the unmined one must escalate — emitting
# BENCH_calib.json (pairs/sec mined, sim evals saved by trust, live
# observation overhead <= 5%).
calib-smoke:
	bash scripts/calib_smoke.sh
	@cat BENCH_calib.json

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck runs when the binary is available (CI installs it; locally
# it is optional so the default toolchain stays sufficient).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

fmt:
	gofmt -w .
