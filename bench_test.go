// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablation and extension experiments of DESIGN.md.
// Each benchmark maps to one experiment id:
//
//	BenchmarkFigure3Model / BenchmarkFigure3Sim*  — F3 (Figure 3)
//	BenchmarkValidationGrid                       — T1
//	BenchmarkSaturationModel / BenchmarkSaturationTable — T2
//	BenchmarkAblationBlocking / BenchmarkAblationServers — A1/A2
//	BenchmarkPolicyComparison                     — A3
//	BenchmarkHypercube                            — X1
//	BenchmarkTorusConsistency                     — X2
//
// Simulation-backed benchmarks use the Quick budget so the whole suite
// runs in minutes; set REPRO_BENCH_FULL=1 for report-quality windows.
// Micro-benchmarks at the bottom cover the hot paths (queueing formulas,
// model resolution, simulator cycles).
package repro_test

import (
	"context"
	"os"
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topology"
)

func budget() exp.Budget {
	if os.Getenv("REPRO_BENCH_FULL") != "" {
		return exp.Full
	}
	return exp.Quick
}

// BenchmarkFigure3Model regenerates the model curves of Figure 3 (1024
// processors; 16-, 32- and 64-flit messages; ten loads to 95% of
// saturation).
func BenchmarkFigure3Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultFigure3()
		cfg.WithSim = false
		res, err := exp.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Curves) != 3 {
			b.Fatal("missing curves")
		}
	}
}

func benchFigure3Sim(b *testing.B, flits int) {
	for i := 0; i < b.N; i++ {
		cfg := exp.Figure3Config{
			NumProc:  1024,
			MsgFlits: []int{flits},
			Points:   6,
			MaxFrac:  0.9,
			WithSim:  true,
			Budget:   budget(),
		}
		res, err := exp.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SaturationLoad[flits], "satload/flits-per-cycle")
	}
}

// BenchmarkFigure3Sim16/32/64 regenerate the experimental (simulated)
// series of Figure 3 at each of the paper's message lengths.
func BenchmarkFigure3Sim16(b *testing.B) { benchFigure3Sim(b, 16) }
func BenchmarkFigure3Sim32(b *testing.B) { benchFigure3Sim(b, 32) }
func BenchmarkFigure3Sim64(b *testing.B) { benchFigure3Sim(b, 64) }

// BenchmarkValidationGrid regenerates T1: model vs simulation across
// machine sizes and message lengths at three operating points.
func BenchmarkValidationGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.ValidationGrid([]int{64, 256, 1024}, []int{16, 32, 64},
			[]float64{0.2, 0.5, 0.8}, budget())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 27 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkSaturationModel computes the Eq. 26 saturation load for every
// configuration in T2 (model side only).
func BenchmarkSaturationModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{64, 256, 1024} {
			for _, s := range []float64{16, 32, 64} {
				m := analytic.MustFatTreeModel(n, s, core.Options{})
				if _, err := m.SaturationLoad(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkSaturationTable regenerates T2 with its simulation brackets.
func BenchmarkSaturationTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.SaturationTable([]int{64, 256}, []int{16, 32}, budget())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkAblationBlocking regenerates A1/A2: the paper's model against
// the variant without the blocking correction and the variant without the
// multi-server treatment (plus the pre-erratum rate), with one simulated
// reference curve.
func BenchmarkAblationBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Ablations(1024, 32, 6, budget())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Variants) != 4 {
			b.Fatal("missing variants")
		}
	}
}

// BenchmarkAblationServers isolates the model-side A2 comparison at a
// fixed operating point (no simulation), for quick iteration on the
// multi-server treatment.
func BenchmarkAblationServers(b *testing.B) {
	base := analytic.MustFatTreeModel(1024, 32, core.Options{})
	single := analytic.MustFatTreeModel(1024, 32, core.Options{SingleServerGroups: true})
	sat, err := base.SaturationLoad()
	if err != nil {
		b.Fatal(err)
	}
	lambda := 0.6 * sat / 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb, err := base.Latency(lambda)
		if err != nil {
			b.Fatal(err)
		}
		ls, err := single.Latency(lambda)
		if err != nil {
			b.Fatal(err)
		}
		if ls.Total <= lb.Total {
			b.Fatal("A2 ordering violated")
		}
	}
}

// BenchmarkPolicyComparison regenerates A3: simulator pair-queue vs
// random-fixed up-link arbitration.
func BenchmarkPolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.PolicyComparison(256, 16, 4, budget())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkHypercube regenerates X1: the general model on a binary
// 8-cube vs simulation.
func BenchmarkHypercube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Hypercube(8, 16, 5, budget())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) != 5 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkTorusConsistency regenerates X2: k=2 torus ≡ hypercube.
func BenchmarkTorusConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, maxDiff, err := exp.TorusConsistency(8, 16, 6)
		if err != nil {
			b.Fatal(err)
		}
		if maxDiff > 1e-9 {
			b.Fatalf("inconsistent: %v", maxDiff)
		}
	}
}

// --- Micro-benchmarks on the hot paths ---

func BenchmarkWaitMG1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		queueing.WaitWormholeMG1(0.002, 20, 16)
	}
}

func BenchmarkWaitMG2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		queueing.WaitWormholeMGm(2, 0.004, 20, 16)
	}
}

func BenchmarkFatTreeModelClosedForm(b *testing.B) {
	m := analytic.MustFatTreeModel(1024, 16, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Latency(0.002); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFatTreeModelCoreGraph(b *testing.B) {
	m := analytic.MustFatTreeModel(1024, 16, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm := m.BuildCoreModel(0.002)
		if _, err := cm.Resolve(core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyFatTree1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := topology.NewFatTree(1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorCycles reports simulator speed on the paper's
// 1024-processor configuration at a moderate load.
func BenchmarkSimulatorCycles(b *testing.B) {
	net := topology.MustFatTree(1024)
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{
			Net:           net,
			MsgFlits:      16,
			Seed:          9,
			WarmupCycles:  1000,
			MeasureCycles: 4000,
		}.FlitLoad(0.02)
		res, err := sim.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "cycles/op")
	}
}

// BenchmarkSweepTable2 runs the paper's validation grid through the
// declarative sweep engine (expansion, worker pool, cache) end to end.
func BenchmarkSweepTable2(b *testing.B) {
	spec, err := sweep.Builtin("table2")
	if err != nil {
		b.Fatal(err)
	}
	spec.Budget = sweep.Budget(budget())
	for i := 0; i < b.N; i++ {
		if _, err := (&sweep.Runner{}).Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepExpand measures pure grid expansion: a 3×3×2×10 spec
// with cache-key hashing, no execution.
func BenchmarkSweepExpand(b *testing.B) {
	spec := sweep.Spec{
		Topologies: []sweep.TopologySpec{{Family: sweep.FamilyBFT, Sizes: []int{64, 256, 1024}}},
		MsgFlits:   []int{16, 32, 64},
		Policies:   []string{"pairqueue", "randomfixed"},
		Loads:      sweep.LoadSpec{Points: 10, MaxFrac: 0.95},
		WithSim:    true,
		Budget:     sweep.Quick,
	}
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Expand(spec); err != nil {
			b.Fatal(err)
		}
	}
}
