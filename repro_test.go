package repro_test

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"repro"
)

// The facade must be sufficient for the quick-start workflow in README.md.
func TestFacadeQuickstart(t *testing.T) {
	model, err := repro.NewFatTreeModel(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := model.Latency(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Total <= 16 {
		t.Errorf("latency %v implausible", lat.Total)
	}
	sat, err := model.SaturationLoad()
	if err != nil {
		t.Fatal(err)
	}
	if sat <= 0 || sat > 1 {
		t.Errorf("saturation %v implausible", sat)
	}

	ft, err := repro.NewFatTree(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Simulate(context.Background(), repro.SimConfig{
		Net:           ft,
		MsgFlits:      16,
		Seed:          1,
		WarmupCycles:  1000,
		MeasureCycles: 8000,
	}.FlitLoad(0.5*sat))
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("half of saturation should be stable")
	}
	if math.Abs(res.LatencyMean-lat.Total)/lat.Total > 0.5 {
		t.Errorf("sim %v wildly off model %v", res.LatencyMean, lat.Total)
	}

	// The redesigned options surface: early stopping and replicas.
	fast, err := repro.Simulate(context.Background(), repro.SimConfig{
		Net:           ft,
		MsgFlits:      16,
		Seed:          1,
		WarmupCycles:  1000,
		MeasureCycles: 8000,
	}.FlitLoad(0.5*sat),
		repro.WithSimTermination(repro.DefaultSimTermination),
		repro.WithSimReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Replicas != 2 {
		t.Errorf("Replicas = %d, want 2", fast.Replicas)
	}
	if math.Abs(fast.LatencyMean-res.LatencyMean)/res.LatencyMean > 0.2 {
		t.Errorf("pooled estimate %v far from fixed-window %v", fast.LatencyMean, res.LatencyMean)
	}
}

func TestFacadeVariantsAndOtherNetworks(t *testing.T) {
	v, err := repro.NewFatTreeModelVariant(64, 16, repro.ModelOptions{NoBlockingCorrection: true})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := repro.NewFatTreeModel(64, 16)
	lv, err := v.Latency(0.002)
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := base.Latency(0.002)
	if lv.Total <= lb.Total {
		t.Errorf("ablated model %v should exceed base %v", lv.Total, lb.Total)
	}

	hm, err := repro.NewHypercubeModel(6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hm.Latency(0.001); err != nil {
		t.Fatal(err)
	}
	tm, err := repro.NewTorusModel(4, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.Latency(0.0005); err != nil {
		t.Fatal(err)
	}
	hc, err := repro.NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if hc.NumProcessors() != 16 {
		t.Error("hypercube size")
	}
}

func TestFacadeFigure3Tiny(t *testing.T) {
	res, err := repro.Figure3(repro.Figure3Config{
		NumProc:  16,
		MsgFlits: []int{8},
		Points:   2,
		MaxFrac:  0.6,
		WithSim:  false,
		Budget:   repro.QuickBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves[8]) != 2 {
		t.Errorf("points = %d", len(res.Curves[8]))
	}
	if repro.FullBudget.Measure <= repro.QuickBudget.Measure {
		t.Error("budgets misordered")
	}
}

func TestFacadeSweep(t *testing.T) {
	spec, err := repro.SweepBuiltin("figure3")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink to a model-only grid so the facade test stays fast.
	spec.Topologies[0].Sizes = []int{16}
	spec.MsgFlits = []int{8}
	spec.WithSim = false
	res, err := repro.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 || len(res.Curves) != 1 {
		t.Errorf("rows=%d curves=%d", len(res.Rows), len(res.Curves))
	}

	if _, err := repro.ParseSweepSpec([]byte(`{"bogus": true}`)); err == nil {
		t.Error("ParseSweepSpec accepted an unknown field")
	}

	cache := repro.NewSweepCache()
	runner := &repro.SweepRunner{Cache: cache}
	if _, err := runner.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	res2, err := runner.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits != len(res2.Rows) {
		t.Errorf("rerun hits=%d, want %d", res2.CacheHits, len(res2.Rows))
	}

	// Streaming delivers every cell and closes the channel.
	streamed := 0
	for pr := range repro.SweepStream(context.Background(), spec) {
		if pr.Err != nil {
			t.Fatal(pr.Err)
		}
		streamed++
	}
	if streamed != len(res.Rows) {
		t.Errorf("streamed %d cells, want %d", streamed, len(res.Rows))
	}
}

// TestFacadeSweepService exercises the serving surface end to end: a
// server on a loopback port with a persistent store, a RemoteBackend
// evaluating a grid against it, and a restarted store serving the same
// grid from disk.
func TestFacadeSweepService(t *testing.T) {
	dir := t.TempDir()
	st, err := repro.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- repro.ListenAndServe(ctx, addr, time.Second, repro.ServeWithCache(st))
	}()

	rb, err := repro.NewRemoteBackend([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := repro.SweepBuiltin("figure3")
	if err != nil {
		t.Fatal(err)
	}
	spec.Topologies[0].Sizes = []int{16}
	spec.MsgFlits = []int{8}
	spec.WithSim = false
	runner := repro.SweepRunner{Backends: []repro.Evaluator{rb}}
	var res *repro.SweepResult
	// The server needs a moment to bind; the backend's retry/backoff
	// absorbs it.
	res, err = runner.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	local, err := repro.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if math.Abs(res.Rows[i].Model-local.Rows[i].Model) > 1e-9 {
			t.Errorf("row %d drifted across the wire: %v vs %v",
				i, res.Rows[i].Model, local.Rows[i].Model)
		}
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The store reopens with every cell intact.
	re, err := repro.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovered() != len(res.Rows) {
		t.Errorf("store recovered %d cells, want %d", re.Recovered(), len(res.Rows))
	}
	var _ repro.SweepCacheStore = re
}

// TestFacadeEvaluator exercises the Evaluator backend surface directly:
// both backends answer the same scenario and their points merge.
func TestFacadeEvaluator(t *testing.T) {
	ab := repro.NewAnalyticBackend()
	sb := repro.NewSimBackend(ab)
	scenario := repro.Scenario{
		Topology: repro.SweepTopology{Family: "bft", Size: 16},
		MsgFlits: 8,
		WithSim:  true,
	}
	scenario.Load.Frac = true
	scenario.Load.Value = 0.4
	scenario.Budget.Warmup = 500
	scenario.Budget.Measure = 4000
	scenario.Budget.Seed = 7

	pt := repro.Point{}
	first := true
	for _, be := range []repro.Evaluator{ab, sb} {
		p, err := be.Evaluate(context.Background(), scenario)
		if err != nil {
			t.Fatalf("%s: %v", be.Name(), err)
		}
		if first {
			pt, first = p, false
		} else {
			pt = pt.Merge(p)
		}
	}
	if math.IsNaN(pt.Model) || math.IsNaN(pt.Sim) {
		t.Fatalf("merged point incomplete: %+v", pt)
	}
	if math.Abs(pt.Sim-pt.Model)/pt.Model > 0.5 {
		t.Errorf("backends disagree wildly: model=%v sim=%v", pt.Model, pt.Sim)
	}
}

func TestFacadePlan(t *testing.T) {
	ctx := context.Background()
	spec, err := repro.PlanBuiltin("bft-capacity-small")
	if err != nil {
		t.Fatal(err)
	}
	spec.SkipCertify = true // keep the facade smoke fast
	res, err := repro.Plan(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best() == nil {
		t.Fatal("empty frontier")
	}
	if res.Stats.AnalyticEvals() == 0 {
		t.Error("no evaluations recorded")
	}

	var done bool
	for u := range repro.PlanStream(ctx, spec) {
		if u.Err != nil {
			t.Fatal(u.Err)
		}
		if u.Phase == "done" {
			done = true
			if len(u.Result.Frontier) != len(res.Frontier) {
				t.Errorf("streamed frontier size %d, want %d", len(u.Result.Frontier), len(res.Frontier))
			}
		}
	}
	if !done {
		t.Error("stream ended without a done update")
	}

	if _, err := repro.ParsePlanSpec([]byte(`{"space":{},"objektive":"max-load"}`)); err == nil {
		t.Error("misspelled plan spec accepted")
	}
}
