#!/usr/bin/env bash
# serve-smoke: start a sweepd daemon, run the paper's Figure 3 grid
# through it remotely (cmd/sweep -addr), diff the JSON result against
# the in-process run, and emit BENCH_serve.json (points/sec over HTTP).
# CI runs this via `make serve-smoke`.
set -eu

PORT="${SERVE_SMOKE_PORT:-18765}"
WORK="$(mktemp -d)"
trap 'kill "$DPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/sweepd" ./cmd/sweepd
go build -o "$WORK/sweep" ./cmd/sweep

"$WORK/sweepd" -addr "127.0.0.1:$PORT" -cache-dir "$WORK/cache" &
DPID=$!

# Wait for the daemon to answer /healthz.
i=0
until curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: sweepd did not come up on :$PORT" >&2
        exit 1
    fi
    sleep 0.2
done

"$WORK/sweep" -spec builtin:figure3 -quiet -json >"$WORK/local.json"
"$WORK/sweep" -spec builtin:figure3 -quiet -json \
    -addr "127.0.0.1:$PORT" -bench-out BENCH_serve.json >"$WORK/remote.json"

# Remote and in-process runs must agree cell for cell; only the wall
# clock may differ.
if ! diff \
    <(grep -v elapsed_ms "$WORK/local.json") \
    <(grep -v elapsed_ms "$WORK/remote.json"); then
    echo "serve-smoke: remote run diverged from in-process run" >&2
    exit 1
fi
echo "serve-smoke: remote == in-process (figure3, $(grep -c '"seed"' "$WORK/local.json") rows)"

# A rerun against the warm server must be answered entirely from its
# store: healthz's cache_hits counter has to cover the full grid.
"$WORK/sweep" -spec builtin:figure3 -quiet -json -addr "127.0.0.1:$PORT" >/dev/null
HEALTH="$(curl -sf "http://127.0.0.1:$PORT/healthz")"
echo "$HEALTH"
HITS="$(printf '%s' "$HEALTH" | sed -n 's/.*"cache_hits":\([0-9]*\).*/\1/p')"
ROWS="$(grep -c '"seed"' "$WORK/local.json")"
if [ -z "$HITS" ] || [ "$HITS" -lt "$ROWS" ]; then
    echo "serve-smoke: warm rerun not served from the store (hits=$HITS, want >= $ROWS)" >&2
    exit 1
fi
echo "serve-smoke: warm rerun fully served from the store ($HITS hits)"

kill "$DPID"
wait "$DPID" 2>/dev/null || true
