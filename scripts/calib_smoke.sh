#!/usr/bin/env bash
# calib-smoke: end-to-end smoke of the calibration observatory.
#
#  1. Run a small with-sim sweep over a 2-shard sweepd fleet into a
#     persistent store, covering the pairqueue region the trust-gated
#     builtin plan will land in (bft-64, s=8, 50-75% of saturation).
#  2. Mine the store with cmd/calib: the map must have regions, finite
#     MAPE everywhere, and pass the -check freshness gate.
#  3. Serve the store with sweepd: /v1/calib must agree with the miner
#     on pair count, /metrics must carry the calib_mape gauges, and
#     /healthz must report the map fresh.
#  4. Run builtin:calibrated-capacity with the map: the mined pairqueue
#     region must come back "trusted" (its certification sim skipped)
#     while the unmined randomfixed region escalates to the simulator —
#     and the plan.decision spans in the trace must say so.
#  5. Gate live observation overhead: the same sweep computed fresh
#     with -calib-out must stay within 5% of the plain run.
#
# Emits BENCH_calib.json. CI runs this via `make calib-smoke`.
set -eu

BASE="${CALIB_SMOKE_PORT:-18830}"
PORT1=$((BASE)); PORT2=$((BASE + 1)); PORT3=$((BASE + 2))
SHARDS="127.0.0.1:$PORT1,127.0.0.1:$PORT2"
WORK="$(mktemp -d)"
STORE="$WORK/store"
D1=""; D2=""; D3=""
trap 'kill $D1 $D2 $D3 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/sweepd" ./cmd/sweepd
go build -o "$WORK/sweep" ./cmd/sweep
go build -o "$WORK/calib" ./cmd/calib
go build -o "$WORK/plan" ./cmd/plan
go build -o "$WORK/obsreport" ./cmd/obsreport

wait_up() { # wait_up PORT
    local i=0
    until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "calib-smoke: sweepd did not come up on :$1" >&2
            exit 1
        fi
        sleep 0.2
    done
}

# num FILE KEY — extract a bare JSON number (integer or float).
num() {
    sed -n 's/.*"'"$2"'": *\(-\{0,1\}[0-9.][0-9.e+-]*\).*/\1/p' "$1" | head -n 1
}

# The mining grid: bft-64 at s=8 and s=16, pairqueue (the default
# policy), with two load fractions inside the 50-75% band the plan's
# operating point (0.9 x 0.8 x saturation = 0.72x) lands in, plus one
# below and one above for extra regions. Fixed windows keep the sim
# deterministic.
cat >"$WORK/mine.json" <<'SPEC'
{
  "name": "calib-mine",
  "topologies": [{"family": "bft", "sizes": [64]}],
  "msg_flits": [8, 16],
  "loads": {"fracs": [0.3, 0.6, 0.7, 0.95]},
  "with_sim": true,
  "budget": {"warmup": 2000, "measure": 10000, "seed": 1}
}
SPEC

"$WORK/sweepd" -addr "127.0.0.1:$PORT1" & D1=$!
"$WORK/sweepd" -addr "127.0.0.1:$PORT2" & D2=$!
wait_up "$PORT1"; wait_up "$PORT2"

# 1. Mine the fleet: cells compute on the shards and land in the
#    coordinator's persistent store.
"$WORK/sweep" -spec "$WORK/mine.json" -shards "$SHARDS" \
    -cache-dir "$STORE" -quiet -stream >/dev/null

kill $D1 $D2 2>/dev/null || true
wait $D1 $D2 2>/dev/null || true
D1=""; D2=""

# 2. Mine the store into the map, then gate freshness and coverage.
"$WORK/calib" -store "$STORE" -json >"$WORK/calib.json"
"$WORK/calib" -store "$STORE" -check
PAIRS="$(num "$WORK/calib.json" pairs)"
PPS="$(num "$WORK/calib.json" pairs_per_sec)"
REGIONS="$(grep -c '"name": "bft-64/' "$WORK/calib.json" || true)"
if [ -z "$PAIRS" ] || [ "$PAIRS" -lt 2 ]; then
    echo "calib-smoke: expected >= 2 mined pairs, got '$PAIRS'" >&2
    exit 1
fi
if [ "$REGIONS" -lt 2 ]; then
    echo "calib-smoke: expected >= 2 regions, got $REGIONS" >&2
    exit 1
fi
if ! grep -q '"name": "bft-64/s=8/pairqueue/50-75%"' "$WORK/calib.json"; then
    echo "calib-smoke: the plan's operating region was not mined" >&2
    cat "$WORK/calib.json" >&2
    exit 1
fi

# 3. Serve the mined store: the daemon recovers the map and surfaces it.
"$WORK/sweepd" -addr "127.0.0.1:$PORT3" -cache-dir "$STORE" & D3=$!
wait_up "$PORT3"
curl -sf "http://127.0.0.1:$PORT3/v1/calib" >"$WORK/served.json"
# The response is one compact line; take the first (top-level) pairs
# field, not the per-region ones.
SERVED_PAIRS="$(grep -o '"pairs": *[0-9]*' "$WORK/served.json" | head -n 1 | grep -o '[0-9]*$')"
if [ "$SERVED_PAIRS" != "$PAIRS" ]; then
    echo "calib-smoke: /v1/calib pairs ($SERVED_PAIRS) != miner pairs ($PAIRS)" >&2
    exit 1
fi
curl -sf "http://127.0.0.1:$PORT3/metrics" >"$WORK/metrics.txt"
if ! grep -q '^calib_mape{region="bft-64/s=8/pairqueue/50-75%"}' "$WORK/metrics.txt"; then
    echo "calib-smoke: /metrics has no calib_mape gauge for the mined region" >&2
    exit 1
fi
curl -sf "http://127.0.0.1:$PORT3/healthz" >"$WORK/health.json"
STALE="$(num "$WORK/health.json" stale_cells)"
if [ "$STALE" != "0" ]; then
    echo "calib-smoke: /healthz reports a stale map (stale_cells=$STALE)" >&2
    exit 1
fi
kill $D3 2>/dev/null || true
wait $D3 2>/dev/null || true
D3=""

# 4. Trust-gated plan: pairqueue's region is mined (trusted, sim
#    skipped); randomfixed's is not (uncalibrated, sim escalated).
"$WORK/plan" -spec builtin:calibrated-capacity -cache-dir "$STORE" \
    -calib "$STORE/calib-map.json" -trace-out "$WORK/plan-trace.ndjson" \
    -quiet -json -bench-out "$WORK/bench-plan.json" >"$WORK/plan.json"
TRUSTED="$(num "$WORK/bench-plan.json" trusted)"
ESCALATED="$(num "$WORK/bench-plan.json" escalated)"
UNCAL="$(num "$WORK/bench-plan.json" uncalibrated)"
SIM_EVALS="$(num "$WORK/bench-plan.json" sim_evals)"
TRUST_SAVED="$(num "$WORK/bench-plan.json" sim_evals_saved_by_trust)"
ESCALATED="${ESCALATED:-0}"; UNCAL="${UNCAL:-0}"
if [ -z "$TRUSTED" ] || [ "$TRUSTED" -lt 1 ]; then
    echo "calib-smoke: no trusted region in the plan (trusted=$TRUSTED)" >&2
    cat "$WORK/plan.json" >&2
    exit 1
fi
if [ $((ESCALATED + UNCAL)) -lt 1 ]; then
    echo "calib-smoke: nothing escalated to the simulator (escalated=$ESCALATED uncalibrated=$UNCAL)" >&2
    exit 1
fi
if ! grep -q '"calib_verdict": *"trusted"' "$WORK/plan.json"; then
    echo "calib-smoke: no trusted verdict on any frontier candidate" >&2
    exit 1
fi
# The decision spans must carry the verdicts.
if ! "$WORK/obsreport" "$WORK/plan-trace.ndjson" | grep -q "trusted=$TRUSTED"; then
    echo "calib-smoke: plan trace decisions do not tally the trusted verdict" >&2
    "$WORK/obsreport" "$WORK/plan-trace.ndjson" >&2
    exit 1
fi

# 5. Observation overhead: the same grid computed fresh in-process,
#    plain vs with a live calibration observer.
"$WORK/sweep" -spec "$WORK/mine.json" -quiet \
    -bench-out "$WORK/bench-off.json" >/dev/null
"$WORK/sweep" -spec "$WORK/mine.json" -quiet \
    -calib-out "$WORK/live-map.json" \
    -bench-out "$WORK/bench-on.json" >/dev/null
PPS_OFF="$(num "$WORK/bench-off.json" points_per_sec)"
PPS_ON="$(num "$WORK/bench-on.json" points_per_sec)"
OVERHEAD="$(awk -v off="$PPS_OFF" -v on="$PPS_ON" \
    'BEGIN { o = (off - on) / off * 100; if (o < 0) o = 0; printf "%.2f", o }')"
if awk -v o="$OVERHEAD" 'BEGIN { exit !(o > 5.0) }'; then
    echo "calib-smoke: live observation overhead ${OVERHEAD}% exceeds 5% (off=$PPS_OFF on=$PPS_ON pts/sec)" >&2
    exit 1
fi

cat >BENCH_calib.json <<EOF
{
  "pairs": $PAIRS,
  "regions": $REGIONS,
  "pairs_per_sec_mined": ${PPS:-0},
  "trusted": $TRUSTED,
  "escalated": $ESCALATED,
  "uncalibrated": $UNCAL,
  "sim_evals": ${SIM_EVALS:-0},
  "sim_evals_saved_by_trust": ${TRUST_SAVED:-0},
  "observe_overhead_pct": $OVERHEAD
}
EOF

echo "calib-smoke: $PAIRS pair(s) in $REGIONS region(s); plan: $TRUSTED trusted (sim skipped), $((ESCALATED + UNCAL)) escalated; overhead ${OVERHEAD}%"
