#!/usr/bin/env bash
# workload-smoke: end-to-end smoke of the workload subsystem's
# determinism contract.
#
#  1. Record a 512-PE bursty (MMPP on-off) run to an NDJSON arrival
#     trace, writing the recording Result in canonical text form.
#  2. Replay the trace; the replayed Result must be bit-identical to
#     the recording run's (a plain file diff).
#  3. Sanity-check the trace: stats must report a super-Poisson
#     interarrival SCV (> 1), or the "bursty" workload is not bursty.
#  4. Emit BENCH_workload.json: events/sec recorded and replayed.
#
# CI runs this via `make workload-smoke`.
set -eu

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/trace" ./cmd/trace

WL='{"process":"mmpp","on_frac":0.25,"burst_cycles":200}'

# 512 processors = a 9-dimension binary hypercube (fat-tree sizes are
# powers of four).
"$WORK/trace" record -o "$WORK/burst512.ndjson" -cube 9 -flits 16 \
    -load 0.08 -warmup 4000 -measure 20000 -seed 1 \
    -workload "$WL" -result-out "$WORK/recorded.txt" -json \
    >"$WORK/record.json"

"$WORK/trace" replay -trace "$WORK/burst512.ndjson" \
    -result-out "$WORK/replayed.txt" -json >"$WORK/replay.json"

# The replayed Result must be bit-identical to the recording run's.
if ! diff "$WORK/recorded.txt" "$WORK/replayed.txt"; then
    echo "workload-smoke: replay diverged from recording" >&2
    exit 1
fi

# The recorded process must actually be bursty: pooled interarrival
# SCV > 1 (Poisson would be ~1).
SCV="$("$WORK/trace" stats -trace "$WORK/burst512.ndjson" -top 1 \
    | sed -n 's/.*"interarrival_scv": \([0-9.]*\),.*/\1/p')"
if [ -z "$SCV" ] || [ "$(printf '%.0f' "$SCV")" -lt 2 ]; then
    echo "workload-smoke: trace SCV $SCV not clearly bursty" >&2
    exit 1
fi

EVENTS="$(sed -n 's/.*"events":\([0-9]*\),.*/\1/p' "$WORK/record.json")"
REC_EPS="$(sed -n 's/.*"events_per_sec":\([0-9.]*\).*/\1/p' "$WORK/record.json")"
REP_EPS="$(sed -n 's/.*"events_per_sec":\([0-9.]*\).*/\1/p' "$WORK/replay.json")"

cat >BENCH_workload.json <<EOF
{
  "benchmark": "workload-smoke",
  "workload": $WL,
  "processors": 512,
  "msg_flits": 16,
  "events": $EVENTS,
  "interarrival_scv": $SCV,
  "record_events_per_sec": $REC_EPS,
  "replay_events_per_sec": $REP_EPS,
  "replay_bit_identical": true
}
EOF

echo "workload-smoke: $EVENTS events recorded and replayed bit-identically (SCV $SCV, record $REC_EPS ev/s, replay $REP_EPS ev/s)"
