#!/usr/bin/env bash
# plan-smoke: end-to-end smoke of the capacity planner over a fleet.
#
#  1. Start two sweepd shards; run the CI-sized builtin plan through the
#     fleet engine (cmd/plan -shards): the coarse grid dispatches as
#     ranges, the bisection probes rotate per-cell.
#  2. Gate on the answer: the Pareto frontier must be non-empty and
#     every frontier candidate sim-certified, and the fleet frontier
#     must match the in-process run exactly (elapsed time aside).
#  3. Emit BENCH_plan.json: candidates/sec plus how many simulator runs
#     the frontier-only certification saved against simulating the
#     whole coarse grid.
#
# CI runs this via `make plan-smoke`.
set -eu

BASE="${PLAN_SMOKE_PORT:-18790}"
PORT1=$((BASE)); PORT2=$((BASE + 1))
SHARDS="127.0.0.1:$PORT1,127.0.0.1:$PORT2"
WORK="$(mktemp -d)"
D1=""; D2=""
trap 'kill $D1 $D2 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/sweepd" ./cmd/sweepd
go build -o "$WORK/plan" ./cmd/plan

wait_up() { # wait_up PORT
    local i=0
    until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "plan-smoke: sweepd did not come up on :$1" >&2
            exit 1
        fi
        sleep 0.2
    done
}

"$WORK/sweepd" -addr "127.0.0.1:$PORT1" & D1=$!
"$WORK/sweepd" -addr "127.0.0.1:$PORT2" & D2=$!
wait_up "$PORT1"; wait_up "$PORT2"

SPEC="builtin:bft-capacity-small"

# In-process reference.
"$WORK/plan" -spec "$SPEC" -quiet -json >"$WORK/local.json"

# The same question over the 2-shard fleet, with the bench artifact.
"$WORK/plan" -spec "$SPEC" -quiet -json -shards "$SHARDS" \
    -bench-out BENCH_plan.json >"$WORK/fleet.json"

# The fleet search must reproduce the in-process answer exactly; only
# wall-clock fields may differ.
if ! diff \
    <(grep -v '"elapsed_ms"' "$WORK/local.json") \
    <(grep -v '"elapsed_ms"' "$WORK/fleet.json"); then
    echo "plan-smoke: fleet plan diverged from in-process run" >&2
    exit 1
fi

FRONTIER="$(sed -n 's/.*"frontier": \([0-9]*\),.*/\1/p' BENCH_plan.json)"
CERTIFIED="$(sed -n 's/.*"certified": \([0-9]*\),.*/\1/p' BENCH_plan.json)"
SAVED="$(sed -n 's/.*"sim_evals_saved_vs_grid": \([0-9]*\),.*/\1/p' BENCH_plan.json)"
CPS="$(sed -n 's/.*"candidates_per_sec": \([0-9.]*\).*/\1/p' BENCH_plan.json)"

if [ -z "$FRONTIER" ] || [ "$FRONTIER" -lt 1 ]; then
    echo "plan-smoke: empty Pareto frontier (frontier=$FRONTIER)" >&2
    exit 1
fi
if [ -z "$CERTIFIED" ] || [ "$CERTIFIED" -ne "$FRONTIER" ]; then
    echo "plan-smoke: frontier not fully sim-certified ($CERTIFIED of $FRONTIER)" >&2
    exit 1
fi
if [ -z "$SAVED" ] || [ "$SAVED" -lt 1 ]; then
    echo "plan-smoke: planner saved no sim evaluations vs the grid (saved=$SAVED)" >&2
    exit 1
fi

echo "plan-smoke: frontier $FRONTIER/$FRONTIER certified over 2 shards, ${CPS} candidates/sec, $SAVED sim evals saved vs grid"

kill $D1 $D2 2>/dev/null || true
wait $D1 $D2 2>/dev/null || true
