#!/usr/bin/env bash
# bounds-smoke: end-to-end smoke of the worst-case bound backend.
#
#  1. Start two sweepd shards; run the hard-SLO builtin plan
#     (cheapest-hard-sla: min-cost under a max_worstcase_latency
#     deadline) through the fleet engine and in-process.
#  2. Gate on the answer: the frontier must be non-empty and fully
#     sim-certified, every certified member's measured sim mean must
#     sit under its worst-case bound (bound_violations == 0), and the
#     fleet answer must match the in-process run exactly (elapsed time
#     aside).
#  3. Benchmark the calculus: a model-only figure3 sweep against the
#     same grid with -backend model,bounds. The bound run must stay
#     within 10x of plain model throughput. Emit BENCH_bounds.json.
#
# CI runs this via `make bounds-smoke`.
set -eu

BASE="${BOUNDS_SMOKE_PORT:-18890}"
PORT1=$((BASE)); PORT2=$((BASE + 1))
SHARDS="127.0.0.1:$PORT1,127.0.0.1:$PORT2"
WORK="$(mktemp -d)"
D1=""; D2=""
trap 'kill $D1 $D2 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/sweepd" ./cmd/sweepd
go build -o "$WORK/plan" ./cmd/plan
go build -o "$WORK/sweep" ./cmd/sweep

wait_up() { # wait_up PORT
    local i=0
    until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "bounds-smoke: sweepd did not come up on :$1" >&2
            exit 1
        fi
        sleep 0.2
    done
}

"$WORK/sweepd" -addr "127.0.0.1:$PORT1" & D1=$!
"$WORK/sweepd" -addr "127.0.0.1:$PORT2" & D2=$!
wait_up "$PORT1"; wait_up "$PORT2"

SPEC="builtin:cheapest-hard-sla"

# In-process reference.
"$WORK/plan" -spec "$SPEC" -quiet -json >"$WORK/local.json"

# The same hard-SLO question over the 2-shard fleet.
"$WORK/plan" -spec "$SPEC" -quiet -json -shards "$SHARDS" \
    -bench-out "$WORK/plan_bench.json" >"$WORK/fleet.json"

# The fleet search must reproduce the in-process answer exactly; only
# wall-clock fields may differ.
if ! diff \
    <(grep -v '"elapsed_ms"' "$WORK/local.json") \
    <(grep -v '"elapsed_ms"' "$WORK/fleet.json"); then
    echo "bounds-smoke: fleet plan diverged from in-process run" >&2
    exit 1
fi

FRONTIER="$(sed -n 's/.*"frontier": \([0-9]*\),.*/\1/p' "$WORK/plan_bench.json")"
CERTIFIED="$(sed -n 's/.*"certified": \([0-9]*\),.*/\1/p' "$WORK/plan_bench.json")"
BOUNDED="$(sed -n 's/.*"bounded": \([0-9]*\),.*/\1/p' "$WORK/plan_bench.json")"
VIOLATIONS="$(sed -n 's/.*"bound_violations": \([0-9]*\),.*/\1/p' "$WORK/plan_bench.json")"

if [ -z "$FRONTIER" ] || [ "$FRONTIER" -lt 1 ]; then
    echo "bounds-smoke: empty hard-SLO frontier (frontier=$FRONTIER)" >&2
    exit 1
fi
if [ -z "$CERTIFIED" ] || [ "$CERTIFIED" -ne "$FRONTIER" ]; then
    echo "bounds-smoke: frontier not fully sim-certified ($CERTIFIED of $FRONTIER)" >&2
    exit 1
fi
if [ -z "$BOUNDED" ] || [ "$BOUNDED" -lt "$FRONTIER" ]; then
    echo "bounds-smoke: frontier member(s) without a worst-case bound (bounded=$BOUNDED of $FRONTIER)" >&2
    exit 1
fi
if [ -z "$VIOLATIONS" ] || [ "$VIOLATIONS" -ne 0 ]; then
    echo "bounds-smoke: certified sim mean above its worst-case bound ($VIOLATIONS violation(s))" >&2
    exit 1
fi

# Throughput: the calculus must stay within 10x of plain model
# evaluation on the paper's figure3 grid (fresh process each, so both
# runs compute every cell cold).
"$WORK/sweep" -spec builtin:figure3 -backend model -quiet \
    -bench-out "$WORK/model_bench.json" >/dev/null
"$WORK/sweep" -spec builtin:figure3 -backend model,bounds -quiet \
    -bench-out "$WORK/bounds_bench.json" >/dev/null

MODEL_PPS="$(sed -n 's/.*"points_per_sec": \([0-9.]*\).*/\1/p' "$WORK/model_bench.json")"
BOUNDS_PPS="$(sed -n 's/.*"points_per_sec": \([0-9.]*\).*/\1/p' "$WORK/bounds_bench.json")"

if [ -z "$MODEL_PPS" ] || [ -z "$BOUNDS_PPS" ]; then
    echo "bounds-smoke: missing throughput numbers (model=$MODEL_PPS bounds=$BOUNDS_PPS)" >&2
    exit 1
fi
if ! awk -v m="$MODEL_PPS" -v b="$BOUNDS_PPS" 'BEGIN { exit !(b * 10 >= m) }'; then
    echo "bounds-smoke: bound cells/sec ($BOUNDS_PPS) more than 10x below model points/sec ($MODEL_PPS)" >&2
    exit 1
fi

RATIO="$(awk -v m="$MODEL_PPS" -v b="$BOUNDS_PPS" 'BEGIN { printf "%.2f", m / b }')"
printf '{\n  "plan": "cheapest-hard-sla",\n  "frontier": %s,\n  "certified": %s,\n  "bounded": %s,\n  "bound_violations": %s,\n  "model_points_per_sec": %s,\n  "bound_points_per_sec": %s,\n  "model_over_bounds_ratio": %s\n}\n' \
    "$FRONTIER" "$CERTIFIED" "$BOUNDED" "$VIOLATIONS" \
    "$MODEL_PPS" "$BOUNDS_PPS" "$RATIO" >BENCH_bounds.json

echo "bounds-smoke: frontier $FRONTIER/$FRONTIER certified with 0 bound violations over 2 shards; bounds at ${BOUNDS_PPS} cells/sec (model ${MODEL_PPS}, ratio ${RATIO}x)"

kill $D1 $D2 2>/dev/null || true
wait $D1 $D2 2>/dev/null || true
