#!/usr/bin/env bash
# dispatch-smoke: end-to-end smoke of the distributed sweep scheduler.
#
#  1. Start three sweepd shards; run the paper's Figure 3 grid through
#     the dispatcher (cmd/sweep -shards), killing one shard mid-sweep;
#     diff the merged JSON against the in-process run — they must agree
#     cell for cell (models, bit-identical sim values, curves).
#  2. Benchmark the batched wire protocol against the per-cell
#     RemoteBackend on the same model-only grid with identically warm
#     shards, and emit BENCH_dispatch.json; the dispatcher must be at
#     least 10x faster.
#
# CI runs this via `make dispatch-smoke`.
set -eu

BASE="${DISPATCH_SMOKE_PORT:-18770}"
PORT1=$((BASE)); PORT2=$((BASE + 1)); PORT3=$((BASE + 2))
SHARDS="127.0.0.1:$PORT1,127.0.0.1:$PORT2,127.0.0.1:$PORT3"
WORK="$(mktemp -d)"
D1=""; D2=""; D3=""
trap 'kill $D1 $D2 $D3 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/sweepd" ./cmd/sweepd
go build -o "$WORK/sweep" ./cmd/sweep

wait_up() { # wait_up PORT
    local i=0
    until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "dispatch-smoke: sweepd did not come up on :$1" >&2
            exit 1
        fi
        sleep 0.2
    done
}

"$WORK/sweepd" -addr "127.0.0.1:$PORT1" & D1=$!
"$WORK/sweepd" -addr "127.0.0.1:$PORT2" & D2=$!
"$WORK/sweepd" -addr "127.0.0.1:$PORT3" & D3=$!
wait_up "$PORT1"; wait_up "$PORT2"; wait_up "$PORT3"

# --- 1. correctness: dispatched figure3 vs in-process, one shard killed ---

"$WORK/sweep" -spec builtin:figure3 -quiet -json >"$WORK/local.json"

"$WORK/sweep" -spec builtin:figure3 -quiet -json -shards "$SHARDS" \
    >"$WORK/dispatched.json" &
SPID=$!
sleep 1
kill "$D3" 2>/dev/null || true # one shard dies mid-sweep
if wait "$SPID"; then :; else
    echo "dispatch-smoke: dispatched sweep failed after shard kill" >&2
    exit 1
fi

# The merged result must match the in-process run cell for cell; only
# the wall clock may differ.
if ! diff \
    <(grep -v elapsed_ms "$WORK/local.json") \
    <(grep -v elapsed_ms "$WORK/dispatched.json"); then
    echo "dispatch-smoke: dispatched run diverged from in-process run" >&2
    exit 1
fi
ROWS="$(grep -c '"seed"' "$WORK/local.json")"
echo "dispatch-smoke: dispatched == in-process with one shard killed mid-sweep (figure3, $ROWS rows)"

# Restore the killed shard for the benchmark.
"$WORK/sweepd" -addr "127.0.0.1:$PORT3" & D3=$!
wait_up "$PORT3"

# --- 2. throughput: batched protocol vs per-cell RemoteBackend ---

# A model-only grid sized so per-request overhead, not evaluation,
# dominates: the quantity the batched protocol exists to amortise.
cat >"$WORK/grid.json" <<'SPEC'
{
  "name": "dispatch-bench",
  "topologies": [{"family": "bft", "sizes": [16, 64]}],
  "msg_flits": [16],
  "loads": {"points": 6000, "max_frac": 0.9}
}
SPEC

# Warm every shard once (untimed), so every timed run below faces
# identically warm servers and measures pure transport cost.
"$WORK/sweep" -spec "$WORK/grid.json" -quiet -json -shards "$SHARDS" >/dev/null

# Best of three per mode: the minimum is the noise-robust estimator of
# how fast each transport can go on a shared CI box.
best() { # best FLAG OUT — runs the grid 3x, keeps the fastest elapsed_ms
    local flag="$1" out="$2" ms best=""
    for _ in 1 2 3; do
        "$WORK/sweep" -spec "$WORK/grid.json" -quiet -json "$flag" "$SHARDS" \
            -bench-out "$out" >/dev/null
        ms="$(sed -n 's/.*"elapsed_ms": \([0-9]*\).*/\1/p' "$out")"
        if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best="$ms"; fi
    done
    echo "$best"
}

DISPATCH_MS="$(best -shards "$WORK/bench_dispatch.json")"
PERCELL_MS="$(best -addr "$WORK/bench_percell.json")"
CELLS="$(sed -n 's/.*"cells": \([0-9]*\).*/\1/p' "$WORK/bench_dispatch.json")"

awk -v cells="$CELLS" -v d="$DISPATCH_MS" -v p="$PERCELL_MS" 'BEGIN {
    if (d < 1) d = 1
    if (p < 1) p = 1
    printf "{\n"
    printf "  \"grid\": \"bft-16/64, s=16, 6000 loads per curve (model-only)\",\n"
    printf "  \"cells\": %d,\n", cells
    printf "  \"percell_elapsed_ms\": %d,\n", p
    printf "  \"dispatch_elapsed_ms\": %d,\n", d
    printf "  \"percell_points_per_sec\": %.1f,\n", cells * 1000 / p
    printf "  \"dispatch_points_per_sec\": %.1f,\n", cells * 1000 / d
    printf "  \"speedup\": %.2f\n", p / d
    printf "}\n"
}' >BENCH_dispatch.json

SPEEDUP="$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' BENCH_dispatch.json)"
echo "dispatch-smoke: $CELLS cells — per-cell ${PERCELL_MS}ms, dispatched ${DISPATCH_MS}ms (${SPEEDUP}x)"
if ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 10) }'; then
    echo "dispatch-smoke: batched throughput only ${SPEEDUP}x per-cell RemoteBackend (want >= 10x)" >&2
    exit 1
fi

kill $D1 $D2 $D3 2>/dev/null || true
wait $D1 $D2 $D3 2>/dev/null || true
