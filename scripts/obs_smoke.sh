#!/usr/bin/env bash
# obs-smoke: end-to-end smoke of fleet-wide observability.
#
#  1. Stitching: two sweepd shards with tracers, a dispatched figure3
#     sweep traced at the coordinator; after graceful shutdown flushes
#     every trace file, the concatenation must reassemble into one
#     well-formed tree (every span parented, one root — obsreport
#     -check), the report must show per-layer time, cache ratio and
#     per-shard skew, and a /metrics scrape must parse as Prometheus
#     text and carry the sim engine counters.
#  2. Overhead: the same dispatched sweep with tracing on must stay
#     within 5% of tracing off (fresh shards per run so both modes pay
#     identical warmup, best of 3, plus 100ms absolute grace for
#     sub-second timing jitter on shared CI boxes). The numbers land in
#     BENCH_obs.json.
#
# CI runs this via `make obs-smoke`.
set -eu

BASE="${OBS_SMOKE_PORT:-18790}"
PORT1=$((BASE)); PORT2=$((BASE + 1))
SHARDS="127.0.0.1:$PORT1,127.0.0.1:$PORT2"
WORK="$(mktemp -d)"
D1=""; D2=""
trap 'kill $D1 $D2 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

go build -o "$WORK/sweepd" ./cmd/sweepd
go build -o "$WORK/sweep" ./cmd/sweep
go build -o "$WORK/obsreport" ./cmd/obsreport

wait_up() { # wait_up PORT
    local i=0
    until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "obs-smoke: sweepd did not come up on :$1" >&2
            exit 1
        fi
        sleep 0.2
    done
}

start_shards() { # start_shards [TRACE_PREFIX]
    local prefix="${1:-}"
    if [ -n "$prefix" ]; then
        "$WORK/sweepd" -addr "127.0.0.1:$PORT1" -trace-out "${prefix}1.ndjson" 2>/dev/null & D1=$!
        "$WORK/sweepd" -addr "127.0.0.1:$PORT2" -trace-out "${prefix}2.ndjson" 2>/dev/null & D2=$!
    else
        "$WORK/sweepd" -addr "127.0.0.1:$PORT1" 2>/dev/null & D1=$!
        "$WORK/sweepd" -addr "127.0.0.1:$PORT2" 2>/dev/null & D2=$!
    fi
    wait_up "$PORT1"; wait_up "$PORT2"
}

stop_shards() { # graceful: SIGTERM flushes stores and tracers
    kill -TERM "$D1" "$D2" 2>/dev/null || true
    wait "$D1" "$D2" 2>/dev/null || true
    D1=""; D2=""
}

# --- 1. cross-shard trace stitching + metrics parse ---

start_shards "$WORK/shard"
"$WORK/sweep" -spec builtin:figure3 -quiet -shards "$SHARDS" \
    -trace-out "$WORK/coord.ndjson" >/dev/null
curl -sf "http://127.0.0.1:$PORT1/metrics" >"$WORK/metrics.txt"
stop_shards

"$WORK/obsreport" -check "$WORK/coord.ndjson" "$WORK/shard1.ndjson" "$WORK/shard2.ndjson"
"$WORK/obsreport" "$WORK/coord.ndjson" "$WORK/shard1.ndjson" "$WORK/shard2.ndjson" \
    >"$WORK/report.txt"
for want in "per-layer time:" "cache:" "per-shard skew:" \
    "dispatch.range" "eval.cell" "sim.run" "critical path:"; do
    if ! grep -q "$want" "$WORK/report.txt"; then
        echo "obs-smoke: trace report is missing \"$want\":" >&2
        cat "$WORK/report.txt" >&2
        exit 1
    fi
done
echo "obs-smoke: dispatched figure3 trace stitched across 2 shards:"
sed 's/^/obs-smoke:   /' "$WORK/report.txt" | head -6

"$WORK/obsreport" -metrics "$WORK/metrics.txt"
for want in sim_runs_total sim_events_popped_total sweep_http_requests_total; do
    if ! grep -q "^$want" "$WORK/metrics.txt"; then
        echo "obs-smoke: /metrics scrape is missing $want" >&2
        exit 1
    fi
done

# --- 2. tracing overhead gate ---

best_run() { # best_run on|off — 3 runs against fresh shards, min elapsed_ms
    local mode="$1" best="" ms
    for _ in 1 2 3; do
        if [ "$mode" = on ]; then
            start_shards "$WORK/t_shard"
            "$WORK/sweep" -spec builtin:figure3 -quiet -shards "$SHARDS" \
                -trace-out "$WORK/t_coord.ndjson" -bench-out "$WORK/bench.json" >/dev/null
        else
            start_shards
            "$WORK/sweep" -spec builtin:figure3 -quiet -shards "$SHARDS" \
                -bench-out "$WORK/bench.json" >/dev/null
        fi
        stop_shards
        ms="$(sed -n 's/.*"elapsed_ms": \([0-9]*\).*/\1/p' "$WORK/bench.json")"
        if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best="$ms"; fi
    done
    echo "$best"
}

OFF_MS="$(best_run off)"
ON_MS="$(best_run on)"
CELLS="$(sed -n 's/.*"cells": \([0-9]*\).*/\1/p' "$WORK/bench.json")"

awk -v cells="$CELLS" -v on="$ON_MS" -v off="$OFF_MS" 'BEGIN {
    if (on < 1) on = 1
    if (off < 1) off = 1
    printf "{\n"
    printf "  \"grid\": \"figure3 dispatched over 2 shards, fresh per run, best of 3\",\n"
    printf "  \"cells\": %d,\n", cells
    printf "  \"tracing_off_elapsed_ms\": %d,\n", off
    printf "  \"tracing_on_elapsed_ms\": %d,\n", on
    printf "  \"tracing_off_points_per_sec\": %.1f,\n", cells * 1000 / off
    printf "  \"tracing_on_points_per_sec\": %.1f,\n", cells * 1000 / on
    printf "  \"overhead_pct\": %.2f\n", (on - off) * 100 / off
    printf "}\n"
}' >BENCH_obs.json

OVERHEAD="$(sed -n 's/.*"overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_obs.json)"
echo "obs-smoke: $CELLS cells — tracing off ${OFF_MS}ms, on ${ON_MS}ms (${OVERHEAD}% overhead)"
if ! awk -v on="$ON_MS" -v off="$OFF_MS" 'BEGIN { exit !(on <= off * 1.05 + 100) }'; then
    echo "obs-smoke: tracing overhead ${OVERHEAD}% exceeds the 5% budget" >&2
    exit 1
fi
