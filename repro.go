// Package repro is a Go reproduction of
//
//	Ronald I. Greenberg and Lee Guan, "An Improved Analytical Model for
//	Wormhole Routed Networks with Application to Butterfly Fat-Trees",
//	Proc. 1997 International Conference on Parallel Processing (ICPP),
//	pp. 44–48, August 1997.
//
// It provides, stdlib-only:
//
//   - the paper's general analytical model for wormhole-routed networks
//     (multi-server M/G/m channel queues with a wormhole blocking
//     correction, resolved backwards from ejection to injection channels);
//   - its application to the butterfly fat-tree (closed-form Eq. 12–26)
//     and to binary hypercubes and k-ary n-cubes;
//   - a flit-level, cycle-driven wormhole simulator matching the paper's
//     experimental assumptions;
//   - the Evaluator backend API: the model and the simulator answer the
//     same question — the latency of a Scenario — behind one
//     context-aware interface (AnalyticBackend, SimBackend); and
//   - a declarative scenario-sweep engine on top of it, with streaming,
//     caching and cancellation, plus an experiment harness regenerating
//     every figure and table of the evaluation; and
//   - a sweep service: a persistent, content-addressed result store
//     (OpenStore), an HTTP serving front-end (ListenAndServe, cmd/sweepd)
//     streaming NDJSON cells over Runner.Stream, and a RemoteBackend that
//     fans grids out to a server fleet behind the same Evaluator
//     interface (see docs/serve.md); and
//   - a distributed sweep scheduler (NewDispatcher): grids partition
//     into contiguous ranges dispatched across the fleet over a batched
//     wire protocol (NewBatchBackend speaks it cell-wise), with
//     cache-aware scheduling, work stealing and shard failover (see
//     docs/dispatch.md); and
//   - a capacity planner (Plan, PlanStream, cmd/plan, POST /v1/plan):
//     model-guided design-space optimization — coarse analytic prune,
//     bisection to the saturation knee per candidate, Pareto frontier
//     over (cost, latency, sustainable load), simulator certification
//     of the frontier only — answering "which network sustains this
//     load under this latency bound" without sweeping a grid (see
//     docs/plan.md); and
//   - a workload subsystem (WorkloadSpec, cmd/trace): declarative
//     bursty arrival processes (Gamma, Weibull, MMPP on-off),
//     per-source rate mixes, destination patterns (hotspot, locality,
//     bitcomplement, transpose), and deterministic NDJSON trace
//     record/replay, threaded through the simulator, sweeps and plans;
//     the default spec is bit-identical to the paper's steady uniform
//     Poisson workload (see docs/workload.md); and
//   - fleet-wide observability (NewTracer, WithTracing, cmd/obsreport):
//     span-style NDJSON traces with deterministic IDs propagated across
//     the sweep/dispatch/serve/sim layers over HTTP headers, engine and
//     store counters folded into /metrics, planner decision traces, and
//     structured request logging (see docs/observability.md); and
//   - a calibration observatory (NewCalibMap, LoadCalibMap, cmd/calib):
//     model-vs-sim error maps mined from the result store or fed live by
//     sweeps, bucketed by region (topology, message length, policy,
//     load band) with per-region MAPE/bias/correlation, persisted next
//     to the store, served over /v1/calib and /metrics, and consulted
//     by the planner to trust-gate its certification sims (see
//     docs/calibration.md).
//
// This facade re-exports the main entry points; the implementation lives
// under internal/ (core, analytic, sim, topology, eval, sweep, …).
//
// # Quick start
//
//	model, _ := repro.NewFatTreeModel(1024, 16)
//	lat, _ := model.Latency(0.002)        // 0.002 messages/cycle/PE
//	sat, _ := model.SaturationLoad()      // flits/cycle/PE at saturation
//
//	ft, _ := repro.NewFatTree(1024)
//	res, _ := repro.Simulate(context.Background(), repro.SimConfig{
//	    Net: ft, MsgFlits: 16,
//	    WarmupCycles: 10000, MeasureCycles: 50000,
//	}.FlitLoad(0.03), repro.WithSimTermination(repro.DefaultSimTermination))
//	fmt.Println(lat.Total, sat, res.LatencyMean)
//
// # Sweeps and streaming
//
// Declarative grids run through the context-aware sweep API; cancelling
// the context aborts mid-simulation. Points can be consumed as they
// complete:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	spec, _ := repro.SweepBuiltin("figure3")
//	for pr := range repro.SweepStream(ctx, spec) {
//	    if pr.Err != nil { log.Fatal(pr.Err) }
//	    fmt.Println(pr.Row.Scenario.CurveKey(), pr.Row.Model, pr.Row.Sim)
//	}
package repro

import (
	"context"
	"io"
	"log/slog"
	"time"

	"repro/internal/analytic"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Re-exported types. The aliases keep godoc for the full API in one
// place while the implementation stays in internal packages.
type (
	// FatTree is the butterfly fat-tree topology of §3.1.
	FatTree = topology.FatTree
	// Hypercube is a binary n-cube with e-cube routing.
	Hypercube = topology.Hypercube
	// Network is the topology contract consumed by the simulator.
	Network = topology.Network

	// FatTreeModel is the paper's analytical model of the fat-tree.
	FatTreeModel = analytic.FatTreeModel
	// HypercubeModel applies the general model to a binary hypercube.
	HypercubeModel = analytic.HypercubeModel
	// TorusModel applies the general model to a k-ary n-cube.
	TorusModel = analytic.TorusModel
	// Latency is a model prediction (total, injection wait/service, D̄).
	Latency = analytic.Latency

	// ModelOptions toggles the model's ingredients for ablations; the
	// zero value is the paper's model.
	ModelOptions = core.Options

	// SimConfig parameterises a simulation run.
	SimConfig = sim.Config
	// SimResult is a simulation measurement.
	SimResult = sim.Result
	// UpLinkPolicy selects the simulator's up-link arbitration
	// discipline.
	UpLinkPolicy = sim.UpLinkPolicy
	// SimOption configures a Simulate call (replicas, termination,
	// histogram).
	SimOption = sim.Option
	// SimTermination is the CI-width early-stopping rule: a run may close
	// its measurement window once the latency estimate's relative 95%
	// half-width drops to RelHalfWidth.
	SimTermination = sim.Termination

	// WorkloadSpec declares a simulator workload: arrival process,
	// per-source rate mix, destination pattern, or a recorded trace to
	// replay (see docs/workload.md). The zero value is the paper's
	// steady uniform Poisson workload, bit-identical to a run with no
	// workload at all. Set it on SimConfig.Workload, a sweep spec's
	// workloads axis, or a plan spec's workload field.
	WorkloadSpec = workload.Spec
	// WorkloadTrace is a recorded arrival trace: a header carrying the
	// full recording recipe plus every accepted arrival, replayable
	// bit-identically (see cmd/trace and docs/workload.md).
	WorkloadTrace = workload.Trace

	// Budget scales experiment simulation effort.
	Budget = exp.Budget
	// Figure3Config parameterises the Figure 3 reproduction.
	Figure3Config = exp.Figure3Config
	// Figure3Result holds a Figure 3 reproduction.
	Figure3Result = exp.Figure3Result

	// Evaluator is the backend contract shared by the analytical model
	// and the simulator: Evaluate(ctx, Scenario) -> Point. Custom
	// backends plug into a SweepRunner via its Backends field.
	Evaluator = eval.Evaluator
	// Scenario is one fully determined evaluation question (topology,
	// message length, policy, variant, load).
	Scenario = eval.Scenario
	// Point is one evaluated scenario; backends merge their halves.
	Point = eval.Point
	// Topology identifies one concrete network instance of a scenario.
	SweepTopology = eval.Topology
	// SweepVariant selects a model ablation for part of a grid.
	SweepVariant = eval.Variant

	// SweepSpec declares a scenario grid for the sweep engine (see
	// docs/sweep.md); SweepRunner executes specs on a bounded worker
	// pool against an optional SweepCache, producing a SweepResult.
	SweepSpec   = sweep.Spec
	SweepRunner = sweep.Runner
	SweepResult = sweep.Result
	SweepCache  = sweep.Cache
	// SweepCacheStore is the result-cache contract a SweepRunner
	// consults; SweepCache and ResultStore both implement it.
	SweepCacheStore = sweep.CacheStore
	// SweepPoint is one streamed sweep cell (row or error).
	SweepPoint = sweep.PointResult

	// RemoteBackend is the client-side Evaluator of the sweep service:
	// scenarios are answered by sweepd servers over HTTP, sharded
	// round-robin with retry/backoff (see docs/serve.md).
	RemoteBackend = eval.RemoteBackend
	// RemoteOption configures a RemoteBackend.
	RemoteOption = eval.RemoteOption
	// BatchBackend is the batched-transport Evaluator: concurrent
	// Evaluate calls coalesce into one /v1/batch request per flush
	// window, amortising the per-cell HTTP round trip (see
	// docs/dispatch.md).
	BatchBackend = eval.BatchBackend
	// BatchOption configures a BatchBackend.
	BatchOption = eval.BatchOption
	// Dispatcher is the distributed sweep scheduler: grids partition
	// into contiguous ranges dispatched across a sweepd fleet, with
	// cache-aware scheduling, work stealing and shard failover (see
	// docs/dispatch.md). It mirrors SweepRunner's Run/Stream API.
	Dispatcher = dispatch.Dispatcher
	// DispatchOption configures a Dispatcher.
	DispatchOption = dispatch.Option
	// DispatchStats is a snapshot of a Dispatcher's scheduling counters.
	DispatchStats = dispatch.Stats
	// ResultStore is the persistent, content-addressed sweep result
	// store: NDJSON segments on disk, a SweepCacheStore to runners.
	ResultStore = store.Store
	// ServeOption configures the sweep service (ListenAndServe).
	ServeOption = serve.Option

	// PlanSpec declares a capacity-planning question: a design space,
	// an objective and constraints (see docs/plan.md).
	PlanSpec = plan.Spec
	// PlanResult is one executed plan: every candidate, the
	// objective-ranked Pareto frontier, and search statistics.
	PlanResult = plan.Result
	// PlanCandidate is one design point, annotated by the search.
	PlanCandidate = plan.Candidate
	// PlanUpdate is one streamed search event (prune/refine/certify/
	// frontier/done).
	PlanUpdate = plan.Update
	// Planner runs plan specs against an Engine; construct with
	// NewPlanner or NewFleetPlanner.
	Planner = plan.Planner
	// PlanEngine is the evaluation surface a Planner searches: grid
	// runs plus single-scenario probes. A SweepRunner satisfies it.
	PlanEngine = plan.Engine
	// PlanCostModel is the pluggable cost surface of the planner;
	// register custom models with plan.RegisterCostModel.
	PlanCostModel = plan.CostModel

	// Tracer serializes completed spans as NDJSON trace events, one
	// line per span, with deterministic scenario-keyed span IDs (see
	// docs/observability.md).
	Tracer = obs.Tracer
	// TraceEvent is one completed span on the wire.
	TraceEvent = obs.Event
	// TraceSpan is one in-flight span; all methods are nil-safe.
	TraceSpan = obs.Span
	// TraceForest is a set of trace trees reassembled from events
	// (BuildTraceForest), e.g. the concatenation of a coordinator's and
	// every shard's trace files.
	TraceForest = obs.Forest
	// TraceReport summarizes a trace forest: per-layer time, critical
	// path, cache hit ratio, planner decisions, per-shard skew.
	TraceReport = obs.Report

	// CalibMap accumulates model-vs-sim error statistics per region
	// (topology, message length, policy, load band relative to model
	// saturation); it satisfies the sweep engine's cell-observer
	// contract, so it can be fed live or mined from a store (see
	// docs/calibration.md).
	CalibMap = calib.Map
	// CalibRegion identifies one accuracy bucket of a CalibMap.
	CalibRegion = calib.Region
	// CalibReport is a CalibMap snapshot: every region's pair count,
	// MAPE, bias, correlation and worst relative error.
	CalibReport = calib.Report
	// CalibGate is a trust threshold (max MAPE, min pairs) for
	// region verdicts; the planner's calibration spec carries one.
	CalibGate = calib.Gate
	// PlanCalibSpec asks a plan search to trust-gate its certification
	// sims against a calibration map (PlanSpec.Calibration).
	PlanCalibSpec = plan.CalibSpec
)

// Simulator policies.
const (
	// PairQueue is the paper's discipline: one FCFS queue per up-link
	// pair (M/G/2-like).
	PairQueue = sim.PairQueue
	// RandomFixed pins each worm to a random member link (2×M/G/1-like).
	RandomFixed = sim.RandomFixed
)

// NewFatTree builds a butterfly fat-tree with numProc processors (a power
// of four ≥ 4).
func NewFatTree(numProc int) (*FatTree, error) { return topology.NewFatTree(numProc) }

// NewHypercube builds a binary hypercube with 2^dims processors.
func NewHypercube(dims int) (*Hypercube, error) { return topology.NewHypercube(dims) }

// NewFatTreeModel creates the paper's fat-tree model (Eq. 12–26) for
// numProc processors and fixed messages of msgFlits flits.
func NewFatTreeModel(numProc int, msgFlits float64) (*FatTreeModel, error) {
	return analytic.NewFatTreeModel(numProc, msgFlits, core.Options{})
}

// NewFatTreeModelVariant creates a fat-tree model with ablation options.
func NewFatTreeModelVariant(numProc int, msgFlits float64, opt ModelOptions) (*FatTreeModel, error) {
	return analytic.NewFatTreeModel(numProc, msgFlits, opt)
}

// NewHypercubeModel creates the general model's hypercube instance.
func NewHypercubeModel(dims int, msgFlits float64) (*HypercubeModel, error) {
	return analytic.NewHypercubeModel(dims, msgFlits, core.Options{})
}

// NewTorusModel creates the general model's unidirectional k-ary n-cube
// instance.
func NewTorusModel(k, dims int, msgFlits float64) (*TorusModel, error) {
	return analytic.NewTorusModel(k, dims, msgFlits, core.Options{})
}

// Simulate runs the flit-level wormhole simulator. The simulator checks
// ctx inside its cycle loop, so cancellation aborts mid-run. Options
// configure CI-width early stopping (WithSimTermination), independent
// replicas (WithSimReplicas) and latency histograms (WithSimHistogram);
// with no options the run is the classic fixed-window simulation.
func Simulate(ctx context.Context, cfg SimConfig, opts ...SimOption) (*SimResult, error) {
	return sim.Run(ctx, cfg, opts...)
}

// SimulateContext is the pre-redesign name of Simulate.
//
// Deprecated: use Simulate — it is ctx-first now.
func SimulateContext(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	return sim.Run(ctx, cfg)
}

// ReadWorkloadTrace parses an NDJSON arrival trace, validating it
// strictly (monotone cycles, in-range endpoints, matching message
// lengths).
func ReadWorkloadTrace(r io.Reader) (*WorkloadTrace, error) { return workload.ReadTrace(r) }

// WriteWorkloadTrace writes a trace in the canonical NDJSON form; equal
// traces produce byte-identical files.
func WriteWorkloadTrace(w io.Writer, tr *WorkloadTrace) error { return workload.WriteTrace(w, tr) }

// Figure3 regenerates the paper's Figure 3 (see exp.Figure3Config;
// zero-value config uses the paper's parameters with a CI-sized budget).
func Figure3(cfg Figure3Config) (*Figure3Result, error) { return exp.Figure3(cfg) }

// NewAnalyticBackend returns the analytical-model Evaluator: memoized
// models per topology/message length/variant, fractional loads anchored
// at the base model's Eq. 26 saturation.
func NewAnalyticBackend() *eval.AnalyticBackend { return eval.NewAnalyticBackend() }

// NewSimBackend returns the simulator Evaluator, resolving fractional
// loads through anchor (normally the sweep's AnalyticBackend; it
// satisfies the interface).
func NewSimBackend(anchor eval.LoadResolver) *eval.SimBackend { return eval.NewSimBackend(anchor) }

// Sweep expands and executes a declarative scenario grid with default
// runner settings, honouring ctx (cancellation reaches into running
// simulations). For worker bounds, custom backends, progress streaming,
// or a shared cache, use a SweepRunner directly (see sweep.NewRunner and
// its functional options WithWorkers, WithCache, WithBackends).
func Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	return (&SweepRunner{}).Run(ctx, spec)
}

// SweepStream executes the grid and delivers each cell as it completes.
// The channel closes when the sweep finishes or ctx is cancelled; errors
// arrive as the final SweepPoint.
func SweepStream(ctx context.Context, spec SweepSpec) <-chan SweepPoint {
	return (&SweepRunner{}).Stream(ctx, spec)
}

// ParseSweepSpec decodes and validates a JSON sweep spec.
func ParseSweepSpec(data []byte) (SweepSpec, error) { return sweep.ParseSpec(data) }

// SweepBuiltin returns a built-in named sweep spec (the paper's grids);
// sweep.Builtins lists the names.
func SweepBuiltin(name string) (SweepSpec, error) { return sweep.Builtin(name) }

// NewSweepCache returns an empty sweep result cache for sharing across
// runners and specs.
func NewSweepCache() *SweepCache { return sweep.NewCache() }

// OpenStore opens (creating if needed) a persistent sweep result store.
// Pass it to a SweepRunner via sweep.WithCache — or to ListenAndServe
// via serve.WithCache — and every computed cell survives process
// restarts; see docs/serve.md for the on-disk layout.
func OpenStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// NewRemoteBackend returns an Evaluator that answers scenarios by
// calling sweepd servers at the given addresses ("host:port" or full
// URLs), sharded round-robin with retry and backoff. Plug it into a
// SweepRunner via sweep.WithBackends to fan a local grid out to a fleet.
func NewRemoteBackend(addrs []string, opts ...RemoteOption) (*RemoteBackend, error) {
	return eval.NewRemoteBackend(addrs, opts...)
}

// NewBatchBackend returns an Evaluator speaking the batched wire
// protocol to sweepd servers at the given addresses: concurrent
// Evaluate calls coalesce into one request per flush window, and
// explicit batches go through EvaluateBatch.
func NewBatchBackend(addrs []string, opts ...BatchOption) (*BatchBackend, error) {
	return eval.NewBatchBackend(addrs, opts...)
}

// NewDispatcher returns the distributed sweep scheduler over a sweepd
// fleet: Run and Stream partition the grid into contiguous ranges,
// dispatch each range whole (only cold cells, when a cache is attached
// via dispatch.WithCache), steal work back from failed or slow shards,
// and merge the streams in grid order. A 3-shard dispatched sweep is
// cell-for-cell identical to an in-process run — shard deaths included.
func NewDispatcher(addrs []string, opts ...DispatchOption) (*Dispatcher, error) {
	return dispatch.New(addrs, opts...)
}

// ServeWithSweeper routes the service's /v1/sweep through the given
// scheduler (normally a Dispatcher), turning the server into a fleet
// front-end.
func ServeWithSweeper(s serve.Sweeper) ServeOption { return serve.WithSweeper(s) }

// ListenAndServe runs the sweep service (the library form of cmd/sweepd)
// on addr until ctx is cancelled, then shuts down gracefully within
// grace (0 picks a default). See docs/serve.md for the HTTP API.
func ListenAndServe(ctx context.Context, addr string, grace time.Duration, opts ...ServeOption) error {
	return serve.ListenAndServe(ctx, addr, grace, opts...)
}

// ServeWithCache attaches a result cache — a SweepCache or a persistent
// ResultStore — to the sweep service.
func ServeWithCache(c SweepCacheStore) ServeOption { return serve.WithCache(c) }

// ServeWithWorkers bounds the worker pool of every sweep the service
// runs.
func ServeWithWorkers(n int) ServeOption { return serve.WithWorkers(n) }

// Plan runs a capacity-planner search in-process: coarse analytic
// prune, per-candidate bisection to the saturation knee, Pareto
// frontier over (cost, latency, sustainable load), simulator
// certification of the frontier. Cancelling ctx aborts the search —
// probes and certification simulations included.
func Plan(ctx context.Context, spec PlanSpec) (*PlanResult, error) {
	return plan.NewLocal(nil).Run(ctx, spec)
}

// PlanStream runs the search and delivers progress updates as they
// happen: candidates as they are pruned, refined and certified, the
// frontier in rank order, and a final done update carrying the whole
// result. Errors arrive as the final update; a cancelled ctx just
// closes the channel.
func PlanStream(ctx context.Context, spec PlanSpec) <-chan PlanUpdate {
	return plan.NewLocal(nil).Stream(ctx, spec)
}

// NewPlanner builds a planner over a custom engine — any SweepRunner
// (in-process, remote or batched backends) or a Dispatcher, which
// satisfies the engine contract with Run + Evaluate.
func NewPlanner(engine PlanEngine) *Planner { return plan.New(engine) }

// NewFleetPlanner builds a planner whose searches execute on a sweepd
// shard fleet: the coarse grid dispatches as contiguous ranges (work
// stealing, failover) and the bisection probes rotate per-cell with
// retry, all sharing the fleet-tagged cache lines of cache (nil for
// none).
func NewFleetPlanner(addrs []string, cache SweepCacheStore) (*Planner, error) {
	var opts []DispatchOption
	if cache != nil {
		opts = append(opts, dispatch.WithCache(cache))
	}
	d, err := dispatch.New(addrs, opts...)
	if err != nil {
		return nil, err
	}
	return plan.New(d), nil
}

// ParsePlanSpec decodes and validates a JSON plan spec; unknown fields
// fail with a field-naming error.
func ParsePlanSpec(data []byte) (PlanSpec, error) { return plan.ParseSpec(data) }

// PlanBuiltin returns a built-in named plan spec; plan.Builtins lists
// the names.
func PlanBuiltin(name string) (PlanSpec, error) { return plan.Builtin(name) }

// ServeWithPlanner routes the service's /v1/plan through the given
// planner (normally a fleet planner), turning the server into a
// capacity-planning front-end.
func ServeWithPlanner(p *Planner) ServeOption { return serve.WithPlanner(p) }

// NewTracer returns a tracer writing NDJSON span events to w. Attach
// it to a context with WithTracing and every instrumented layer under
// that context — sweeps, dispatch, remote evaluation, the simulator,
// the planner — records spans into one stitched trace.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// WithTracing returns a context starting new trace roots on t; pass it
// to Sweep, Plan, a Dispatcher or a SweepRunner. A nil tracer returns
// ctx unchanged.
func WithTracing(ctx context.Context, t *Tracer) context.Context { return obs.WithTracer(ctx, t) }

// ServeWithTracer records the sweep service's request spans — stitched
// to the calling client's trace via the X-Obs-Trace/X-Obs-Span headers
// — and everything the engines run under them.
func ServeWithTracer(t *Tracer) ServeOption { return serve.WithTracer(t) }

// ServeWithLogger attaches a structured logger to the sweep service:
// every request is logged with endpoint, status, duration, remote
// address and — when traced — the trace ID (debug level for successes,
// warn/error for HTTP errors).
func ServeWithLogger(l *slog.Logger) ServeOption { return serve.WithLogger(l) }

// ReadTraceEvents parses a stream of NDJSON span events.
func ReadTraceEvents(r io.Reader) ([]TraceEvent, error) { return obs.ReadEvents(r) }

// BuildTraceForest reassembles span events into trace trees.
func BuildTraceForest(events []TraceEvent) *TraceForest { return obs.BuildForest(events) }

// AnalyzeTrace summarizes span events: per-layer time, the critical
// path, cache hit ratio, planner decision counts, per-shard skew.
func AnalyzeTrace(events []TraceEvent) *TraceReport { return obs.Analyze(events) }

// CheckTraceForest validates well-formedness: at least one span, no
// orphans, exactly one root per trace — the cross-shard stitching gate.
func CheckTraceForest(f *TraceForest) error { return obs.CheckForest(f) }

// NewCalibMap returns an empty calibration map. Attach it to a sweep
// runner (sweep.WithCalibration), a dispatcher
// (dispatch.WithCalibration) or the sweep service
// (ServeWithCalibration) to observe cells live, or mine a store with
// Map.Mine / cmd/calib.
func NewCalibMap() *CalibMap { return calib.NewMap() }

// LoadCalibMap loads a calibration map saved by Map.Save; a missing
// file returns an empty map, so load-observe-save cycles compose.
func LoadCalibMap(path string) (*CalibMap, error) { return calib.LoadMap(path) }

// CalibMapPath is the conventional location of a store directory's
// calibration map (storeDir/calib-map.json) — where cmd/calib and
// sweepd -cache-dir read and write it.
func CalibMapPath(storeDir string) string { return calib.MapPath(storeDir) }

// ServeWithCalibration attaches a calibration map to the sweep
// service: GET /v1/calib serves its region report, /healthz gains a
// calibration block, /metrics gains the calib_mape gauges, and the
// default runner and /v1/plan searches feed and consult it.
func ServeWithCalibration(m *CalibMap) ServeOption { return serve.WithCalibration(m) }

// QuickBudget and FullBudget are the standard experiment efforts.
var (
	QuickBudget = exp.Quick
	FullBudget  = exp.Full
)

// DefaultSimTermination is the standard early-stopping rule: stop once
// the latency estimate is within ±5% at 95% confidence.
var DefaultSimTermination = sim.DefaultTermination

// WithSimReplicas runs n independent replicas of the simulation
// (derived seeds, concurrent execution) and pools their statistics.
func WithSimReplicas(n int) SimOption { return sim.WithReplicas(n) }

// WithSimTermination enables CI-width early stopping with the given
// rule; the zero rule disables it.
func WithSimTermination(t SimTermination) SimOption { return sim.WithTermination(t) }

// WithSimHistogram collects a latency histogram over [0, max) cycles
// (max = 0 picks a bound from the topology) and fills the result's
// percentile fields.
func WithSimHistogram(max float64) SimOption { return sim.WithHistogram(max) }
